#include "baselines/local_rwr.h"

#include "common/check.h"
#include "reorder/louvain.h"
#include "rwr/power_iteration.h"
#include "sparse/coo_builder.h"

namespace kdash::baselines {

PartitionLocalRwr::PartitionLocalRwr(const graph::Graph& graph,
                                     const LocalRwrOptions& options)
    : options_(options), num_nodes_(graph.num_nodes()) {
  reorder::LouvainOptions louvain_options;
  louvain_options.seed = options.seed;
  const reorder::LouvainResult louvain =
      reorder::RunLouvain(graph, louvain_options);

  partition_of_node_ = louvain.community_of_node;
  local_id_of_node_.assign(static_cast<std::size_t>(num_nodes_), kInvalidNode);
  partitions_.resize(static_cast<std::size_t>(louvain.num_communities));
  for (NodeId u = 0; u < num_nodes_; ++u) {
    auto& partition =
        partitions_[static_cast<std::size_t>(partition_of_node_[static_cast<std::size_t>(u)])];
    local_id_of_node_[static_cast<std::size_t>(u)] =
        static_cast<NodeId>(partition.members.size());
    partition.members.push_back(u);
  }

  // Induced subgraph per partition, column-renormalized over the edges
  // that survive (cross-partition mass is simply discarded — the method's
  // defining approximation).
  for (auto& partition : partitions_) {
    const NodeId size = static_cast<NodeId>(partition.members.size());
    sparse::CooBuilder builder(size, size);
    for (NodeId local_v = 0; local_v < size; ++local_v) {
      const NodeId v = partition.members[static_cast<std::size_t>(local_v)];
      Scalar within_weight = 0.0;
      for (const graph::Neighbor& nb : graph.OutNeighbors(v)) {
        if (partition_of_node_[static_cast<std::size_t>(nb.node)] ==
            partition_of_node_[static_cast<std::size_t>(v)]) {
          within_weight += nb.weight;
        }
      }
      if (within_weight <= 0.0) continue;
      for (const graph::Neighbor& nb : graph.OutNeighbors(v)) {
        if (partition_of_node_[static_cast<std::size_t>(nb.node)] ==
            partition_of_node_[static_cast<std::size_t>(v)]) {
          builder.Add(local_id_of_node_[static_cast<std::size_t>(nb.node)],
                      local_v, nb.weight / within_weight);
        }
      }
    }
    partition.adjacency = builder.BuildCsc();
  }
}

std::vector<Scalar> PartitionLocalRwr::Solve(NodeId query) const {
  KDASH_CHECK(query >= 0 && query < num_nodes_);
  const auto& partition =
      partitions_[static_cast<std::size_t>(partition_of_node_[static_cast<std::size_t>(query)])];

  rwr::PowerIterationOptions pi;
  pi.restart_prob = options_.restart_prob;
  pi.tolerance = options_.tolerance;
  pi.max_iterations = options_.max_iterations;
  const auto local = rwr::SolveRwr(
      partition.adjacency, local_id_of_node_[static_cast<std::size_t>(query)], pi);

  std::vector<Scalar> full(static_cast<std::size_t>(num_nodes_), 0.0);
  for (std::size_t local_u = 0; local_u < partition.members.size(); ++local_u) {
    full[static_cast<std::size_t>(partition.members[local_u])] =
        local.proximity[local_u];
  }
  return full;
}

std::vector<ScoredNode> PartitionLocalRwr::TopK(NodeId query,
                                                std::size_t k) const {
  return TopKOfVector(Solve(query), k);
}

}  // namespace kdash::baselines
