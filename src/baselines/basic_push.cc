#include "baselines/basic_push.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/check.h"
#include "common/timer.h"
#include "rwr/direct_solver.h"

namespace kdash::baselines {

BasicPush::BasicPush(const sparse::CscMatrix& a,
                     const BasicPushOptions& options)
    : options_(options), num_nodes_(a.rows()), a_(a) {
  KDASH_CHECK_EQ(a.rows(), a.cols());
  const WallTimer timer;

  // Hub selection: highest in-degree nodes of A (they accumulate the most
  // residual mass, so absorbing them exactly pays off most).
  std::vector<Index> in_degree(static_cast<std::size_t>(num_nodes_), 0);
  for (NodeId col = 0; col < num_nodes_; ++col) {
    const Index end = a_.ColEnd(col);
    for (Index t = a_.ColBegin(col); t < end; ++t) {
      ++in_degree[static_cast<std::size_t>(a_.RowIndex(t))];
    }
  }
  std::vector<NodeId> by_degree(static_cast<std::size_t>(num_nodes_));
  std::iota(by_degree.begin(), by_degree.end(), 0);
  std::stable_sort(by_degree.begin(), by_degree.end(), [&](NodeId x, NodeId y) {
    return in_degree[static_cast<std::size_t>(x)] >
           in_degree[static_cast<std::size_t>(y)];
  });
  const int hubs = std::min<int>(options.num_hubs, num_nodes_);
  hub_ids_.assign(by_degree.begin(), by_degree.begin() + hubs);
  hub_index_of_node_.assign(static_cast<std::size_t>(num_nodes_), kInvalidNode);
  for (int h = 0; h < hubs; ++h) {
    hub_index_of_node_[static_cast<std::size_t>(hub_ids_[static_cast<std::size_t>(h)])] =
        static_cast<NodeId>(h);
  }

  // Exact hub vectors via one shared factorization.
  const rwr::DirectRwrSolver solver(a_, options.restart_prob);
  hub_vectors_.reserve(hub_ids_.size());
  for (const NodeId hub : hub_ids_) {
    hub_vectors_.push_back(solver.Solve(hub));
  }
  precompute_seconds_ = timer.Seconds();
}

std::vector<ScoredNode> BasicPush::TopK(NodeId query, std::size_t k,
                                        BasicPushStats* stats) const {
  KDASH_CHECK(query >= 0 && query < num_nodes_);
  KDASH_CHECK(k > 0);
  const Scalar c = options_.restart_prob;
  const Scalar damp = 1.0 - c;

  std::vector<Scalar> estimate(static_cast<std::size_t>(num_nodes_), 0.0);
  std::vector<Scalar> residual(static_cast<std::size_t>(num_nodes_), 0.0);
  // Max-residual priority queue with lazy (stale) entries.
  using Entry = std::pair<Scalar, NodeId>;
  std::priority_queue<Entry> queue;

  BasicPushStats local_stats;
  Scalar total_residual = 1.0;

  // Seed: all mass on the query. If the query is itself a hub, fold
  // immediately — the answer is exact.
  auto fold_hub = [&](NodeId hub_node, Scalar mass) {
    const NodeId h = hub_index_of_node_[static_cast<std::size_t>(hub_node)];
    const std::vector<Scalar>& vec = hub_vectors_[static_cast<std::size_t>(h)];
    for (std::size_t i = 0; i < vec.size(); ++i) estimate[i] += mass * vec[i];
    total_residual -= mass;
    ++local_stats.hub_folds;
  };

  if (hub_index_of_node_[static_cast<std::size_t>(query)] != kInvalidNode) {
    fold_hub(query, 1.0);
  } else {
    residual[static_cast<std::size_t>(query)] = 1.0;
    queue.emplace(1.0, query);
  }

  const std::size_t heap_k = k;
  auto separation_reached = [&]() {
    // Lower bounds are the estimates; upper bounds add the outstanding
    // residual. Separation: K-th best lower bound ≥ best upper bound among
    // nodes outside the current top-K ⇔ lb_K ≥ lb_{K+1} + R.
    TopKHeap heap(heap_k + 1);
    for (NodeId u = 0; u < num_nodes_; ++u) {
      heap.Push(u, estimate[static_cast<std::size_t>(u)]);
    }
    const std::vector<ScoredNode> best = heap.Sorted();
    if (best.size() <= heap_k) return true;
    return best[heap_k - 1].score >= best[heap_k].score + total_residual;
  };

  int since_check = 0;
  while (!queue.empty() && total_residual > options_.residual_floor) {
    const auto [value, u] = queue.top();
    queue.pop();
    const Scalar ru = residual[static_cast<std::size_t>(u)];
    if (ru <= 0.0 || value != ru) continue;  // stale entry

    residual[static_cast<std::size_t>(u)] = 0.0;
    if (hub_index_of_node_[static_cast<std::size_t>(u)] != kInvalidNode) {
      fold_hub(u, ru);
    } else {
      // Push: keep c·ρ(u) at u, spread (1-c)·ρ(u) along column u of A.
      estimate[static_cast<std::size_t>(u)] += c * ru;
      total_residual -= c * ru;
      const Index end = a_.ColEnd(u);
      Scalar spread = 0.0;
      for (Index t = a_.ColBegin(u); t < end; ++t) {
        const NodeId v = a_.RowIndex(t);
        const Scalar dr = damp * a_.Value(t) * ru;
        residual[static_cast<std::size_t>(v)] += dr;
        spread += dr;
        queue.emplace(residual[static_cast<std::size_t>(v)], v);
      }
      // Dangling columns leak (1-c)·ρ(u) out of the walk entirely.
      total_residual -= damp * ru - spread;
      ++local_stats.pushes;
    }

    if (++since_check >= options_.check_interval) {
      since_check = 0;
      if (separation_reached()) break;
    }
  }

  // Recall-1 answer set: everything whose upper bound reaches the K-th
  // lower bound. A node that ever received residual mass has either been
  // pushed (estimate > 0) or still holds residual > 0, so the pair of
  // conditions below covers every node with potentially-positive
  // proximity; fully untouched nodes satisfy p(v) ≤ R and are covered by
  // the θ comparison once separation is reached.
  TopKHeap heap(heap_k);
  for (NodeId u = 0; u < num_nodes_; ++u) {
    heap.Push(u, estimate[static_cast<std::size_t>(u)]);
  }
  const Scalar theta = heap.Threshold();
  // The residual total is maintained by repeated subtraction and can drift
  // a few ulp below its true (non-negative) value; exact proximity ties
  // then sit exactly on the θ boundary. Clamp and add relative slack so
  // the recall guarantee survives floating point.
  const Scalar outstanding = std::max<Scalar>(total_residual, 0.0);
  const Scalar slack = 1e-12 * (1.0 + theta);
  std::vector<ScoredNode> answer;
  for (NodeId u = 0; u < num_nodes_; ++u) {
    const Scalar lb = estimate[static_cast<std::size_t>(u)];
    const bool touched = lb > 0.0 || residual[static_cast<std::size_t>(u)] > 0.0;
    if (lb + outstanding + slack >= theta && touched) {
      answer.push_back(ScoredNode{u, lb});
    }
  }
  std::sort(answer.begin(), answer.end(), RanksHigher);

  local_stats.final_residual = total_residual;
  local_stats.answer_size = answer.size();
  if (stats != nullptr) *stats = local_stats;
  return answer;
}

}  // namespace kdash::baselines
