#include "baselines/b_lin.h"

#include "common/check.h"
#include "common/random.h"
#include "common/timer.h"
#include "linalg/randomized_svd.h"
#include "lu/sparse_lu.h"
#include "lu/triangular.h"
#include "reorder/louvain.h"
#include "sparse/coo_builder.h"

namespace kdash::baselines {

BLin::BLin(const graph::Graph& graph, const BLinOptions& options)
    : options_(options), num_nodes_(graph.num_nodes()) {
  KDASH_CHECK(options.restart_prob > 0.0 && options.restart_prob < 1.0);
  const WallTimer timer;
  const Scalar damp = 1.0 - options.restart_prob;

  // Partition; split A into within-partition A₁ and cross-partition A₂.
  reorder::LouvainOptions louvain_options;
  louvain_options.seed = options.seed;
  const reorder::LouvainResult partition =
      reorder::RunLouvain(graph, louvain_options);
  num_partitions_ = partition.num_communities;

  const sparse::CscMatrix a = graph.NormalizedAdjacency();
  sparse::CooBuilder a1_builder(num_nodes_, num_nodes_);
  sparse::CooBuilder a2_builder(num_nodes_, num_nodes_);
  for (NodeId col = 0; col < num_nodes_; ++col) {
    const NodeId col_part =
        partition.community_of_node[static_cast<std::size_t>(col)];
    const Index end = a.ColEnd(col);
    for (Index t = a.ColBegin(col); t < end; ++t) {
      const NodeId row = a.RowIndex(t);
      if (partition.community_of_node[static_cast<std::size_t>(row)] == col_part) {
        a1_builder.Add(row, col, a.Value(t));
      } else {
        a2_builder.Add(row, col, a.Value(t));
      }
    }
  }
  const sparse::CscMatrix a1 = a1_builder.BuildCsc();
  const sparse::CscMatrix a2 = a2_builder.BuildCsc();

  // W₁ = I - (1-c)A₁ is block diagonal (its graph has no cross-partition
  // edges), so the exact LU and triangular inverses stay block-confined.
  const sparse::CscMatrix w1 =
      lu::BuildRwrSystemMatrix(a1, options.restart_prob);
  const lu::LuFactors factors = lu::FactorizeLu(w1);
  const sparse::CscMatrix l_inv = lu::InvertLowerTriangular(factors.lower);
  const sparse::CscMatrix u_inv = lu::InvertUpperTriangular(factors.upper);
  // W₁⁻¹ = U⁻¹ L⁻¹, assembled explicitly (block-sparse).
  {
    sparse::CooBuilder w1_inv_builder(num_nodes_, num_nodes_);
    std::vector<Scalar> column(static_cast<std::size_t>(num_nodes_), 0.0);
    std::vector<NodeId> touched;
    for (NodeId j = 0; j < num_nodes_; ++j) {
      touched.clear();
      // column = U⁻¹ · (L⁻¹ e_j): combine the stored column of L⁻¹ with
      // columns of U⁻¹.
      const Index lj_end = l_inv.ColEnd(j);
      for (Index t = l_inv.ColBegin(j); t < lj_end; ++t) {
        const NodeId k = l_inv.RowIndex(t);
        const Scalar coeff = l_inv.Value(t);
        const Index uk_end = u_inv.ColEnd(k);
        for (Index s = u_inv.ColBegin(k); s < uk_end; ++s) {
          const NodeId row = u_inv.RowIndex(s);
          if (column[static_cast<std::size_t>(row)] == 0.0) touched.push_back(row);
          column[static_cast<std::size_t>(row)] += u_inv.Value(s) * coeff;
        }
      }
      for (const NodeId row : touched) {
        const Scalar value = column[static_cast<std::size_t>(row)];
        column[static_cast<std::size_t>(row)] = 0.0;
        if (value != 0.0) w1_inv_builder.Add(row, j, value);
      }
    }
    w1_inverse_ = w1_inv_builder.BuildCsc();
  }

  // Rank-r SVD of the cross-partition matrix.
  Rng rng(options.seed);
  linalg::SvdOptions svd_options;
  svd_options.rank = options.target_rank;
  const linalg::SvdResult svd = linalg::RandomizedSvd(a2, svd_options, rng);
  v_ = svd.v;

  // Ũ = W₁⁻¹ U and Λ = (Σ⁻¹ - (1-c) Vᵀ Ũ)⁻¹.
  u_tilde_ = linalg::SparseDenseMatMul(w1_inverse_, svd.u);
  const int r = static_cast<int>(svd.singular_values.size());
  linalg::DenseMatrix core = linalg::TransposeMatMul(v_, u_tilde_);
  for (int i = 0; i < r; ++i) {
    for (int j = 0; j < r; ++j) core(i, j) = -damp * core(i, j);
    const Scalar sigma = svd.singular_values[static_cast<std::size_t>(i)];
    core(i, i) += sigma > 1e-12 ? 1.0 / sigma : 1e12;
  }
  lambda_ = linalg::InvertDense(core);
  precompute_seconds_ = timer.Seconds();
}

std::vector<Scalar> BLin::Solve(NodeId query) const {
  KDASH_CHECK(query >= 0 && query < num_nodes_);
  const Scalar c = options_.restart_prob;
  const Scalar damp = 1.0 - c;
  const int r = lambda_.rows();

  // w = W₁⁻¹ e_q: a stored sparse column.
  // z = Vᵀ w over the column's nonzeros only.
  std::vector<Scalar> z(static_cast<std::size_t>(r), 0.0);
  const Index end = w1_inverse_.ColEnd(query);
  for (Index t = w1_inverse_.ColBegin(query); t < end; ++t) {
    const NodeId i = w1_inverse_.RowIndex(t);
    const Scalar wi = w1_inverse_.Value(t);
    for (int j = 0; j < r; ++j) {
      z[static_cast<std::size_t>(j)] += v_(i, j) * wi;
    }
  }
  const std::vector<Scalar> y = linalg::MatVec(lambda_, z);

  // p = c (w + (1-c) Ũ y).
  std::vector<Scalar> p = linalg::MatVec(u_tilde_, y);
  for (auto& value : p) value *= c * damp;
  for (Index t = w1_inverse_.ColBegin(query); t < end; ++t) {
    p[static_cast<std::size_t>(w1_inverse_.RowIndex(t))] +=
        c * w1_inverse_.Value(t);
  }
  return p;
}

std::vector<ScoredNode> BLin::TopK(NodeId query, std::size_t k) const {
  return TopKOfVector(Solve(query), k);
}

}  // namespace kdash::baselines
