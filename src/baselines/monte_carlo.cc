#include "baselines/monte_carlo.h"

#include <algorithm>

#include "common/check.h"

namespace kdash::baselines {

MonteCarloRwr::MonteCarloRwr(const sparse::CscMatrix& a,
                             const MonteCarloOptions& options)
    : options_(options), num_nodes_(a.rows()) {
  KDASH_CHECK_EQ(a.rows(), a.cols());
  KDASH_CHECK(options.num_walks > 0);
  KDASH_CHECK(options.restart_prob > 0.0 && options.restart_prob < 1.0);

  col_ptr_ = a.col_ptr();
  row_idx_ = a.row_idx();
  cumulative_.resize(static_cast<std::size_t>(a.nnz()));
  column_mass_.assign(static_cast<std::size_t>(num_nodes_), 0.0);
  for (NodeId col = 0; col < num_nodes_; ++col) {
    Scalar running = 0.0;
    for (Index k = a.ColBegin(col); k < a.ColEnd(col); ++k) {
      running += a.Value(k);
      cumulative_[static_cast<std::size_t>(k)] = running;
    }
    column_mass_[static_cast<std::size_t>(col)] = running;
  }
}

std::vector<Scalar> MonteCarloRwr::Solve(NodeId query) const {
  KDASH_CHECK(query >= 0 && query < num_nodes_);
  // Per-query deterministic stream (independent of call order).
  Rng rng(options_.seed ^ (static_cast<std::uint64_t>(query) * 0x9e3779b9ULL));

  std::vector<Index> visits(static_cast<std::size_t>(num_nodes_), 0);
  Index total_visits = 0;
  const Scalar c = options_.restart_prob;

  for (int walk = 0; walk < options_.num_walks; ++walk) {
    NodeId u = query;
    for (;;) {
      ++visits[static_cast<std::size_t>(u)];
      ++total_visits;
      if (rng.NextDouble() < c) break;  // restart ends the walk segment
      // Step along column u; sub-stochastic columns can absorb the walk
      // (dangling mass leaks, matching the library-wide convention).
      const Scalar mass = column_mass_[static_cast<std::size_t>(u)];
      if (mass <= 0.0) break;
      const Scalar r = rng.NextDouble() * 1.0;
      if (r >= mass) break;  // leaked
      const auto begin = cumulative_.begin() +
                         static_cast<std::ptrdiff_t>(col_ptr_[static_cast<std::size_t>(u)]);
      const auto end = cumulative_.begin() +
                       static_cast<std::ptrdiff_t>(col_ptr_[static_cast<std::size_t>(u) + 1]);
      const auto it = std::upper_bound(begin, end, r);
      KDASH_DCHECK(it != end);
      u = row_idx_[static_cast<std::size_t>(it - cumulative_.begin())];
    }
  }

  // Normalize: each walk contributes a geometric number of visits with
  // mean 1/c, so visits/num_walks·c estimates p (which sums to ≤ 1).
  std::vector<Scalar> p(static_cast<std::size_t>(num_nodes_), 0.0);
  const Scalar scale = c / static_cast<Scalar>(options_.num_walks);
  for (NodeId u = 0; u < num_nodes_; ++u) {
    p[static_cast<std::size_t>(u)] =
        scale * static_cast<Scalar>(visits[static_cast<std::size_t>(u)]);
  }
  return p;
}

std::vector<ScoredNode> MonteCarloRwr::TopK(NodeId query, std::size_t k) const {
  return TopKOfVector(Solve(query), k);
}

}  // namespace kdash::baselines
