// NB_LIN (Tong, Faloutsos, Pan — "Fast Random Walk with Restart and Its
// Applications", ICDM 2006): the low-rank approximate RWR solver the paper
// compares against in Figures 2–4.
//
// Precompute: A ≈ U Σ Vᵀ (rank r), then by Sherman–Morrison–Woodbury
//   W⁻¹ = (I - (1-c) U Σ Vᵀ)⁻¹ ≈ I + (1-c) U Λ Vᵀ,
//   Λ = (Σ⁻¹ - (1-c) Vᵀ U)⁻¹  (r × r dense).
// Query: p̃ = c q + c (1-c) U Λ (Vᵀ q); O(n·r) per query, O(n·r) space —
// the O(n²)/O(n²) behavior of Theorem 3 shows up as r grows toward n.
// The target rank is the accuracy/speed knob swept in Figures 3–4.
#ifndef KDASH_BASELINES_NB_LIN_H_
#define KDASH_BASELINES_NB_LIN_H_

#include <cstdint>
#include <vector>

#include "common/top_k.h"
#include "common/types.h"
#include "linalg/dense_matrix.h"
#include "linalg/randomized_svd.h"
#include "sparse/csc_matrix.h"

namespace kdash::baselines {

struct NbLinOptions {
  Scalar restart_prob = 0.95;
  int target_rank = 100;
  std::uint64_t seed = 42;
};

class NbLin {
 public:
  NbLin(const sparse::CscMatrix& a, const NbLinOptions& options);

  // Approximate proximity vector for the query node.
  std::vector<Scalar> Solve(NodeId query) const;

  // Top-k of the approximate proximities (NB_LIN scores all n nodes; K has
  // no effect on its cost, as the paper notes for Figure 2).
  std::vector<ScoredNode> TopK(NodeId query, std::size_t k) const;

  int target_rank() const { return options_.target_rank; }
  double precompute_seconds() const { return precompute_seconds_; }

 private:
  NbLinOptions options_;
  NodeId num_nodes_ = 0;
  linalg::DenseMatrix u_;        // n × r
  linalg::DenseMatrix v_;        // n × r
  linalg::DenseMatrix lambda_;   // r × r
  double precompute_seconds_ = 0.0;
};

}  // namespace kdash::baselines

#endif  // KDASH_BASELINES_NB_LIN_H_
