// Basic Push Algorithm (Gupta, Pathak, Chakrabarti — "Fast Algorithms for
// Top-k Personalized PageRank Queries", WWW 2008): the push/hub comparator
// of Figures 2–4.
//
// The algorithm maintains an estimate vector π̂ and a residual vector ρ with
// the invariant  p = π̂ + Σ_u ρ(u) · p⁽ᵘ⁾  (p⁽ᵘ⁾ = exact RWR vector from u).
// A push at node u moves c·ρ(u) into π̂(u) and spreads (1-c)·ρ(u) along u's
// out-transitions. The residual of a *hub* node is never pushed: hubs have
// exact precomputed RWR vectors, so their residual mass is folded in exactly.
// Since every node's true score lies in [π̂(v), π̂(v) + R] (R = remaining
// non-folded residual), returning every node whose upper bound reaches the
// K-th lower bound yields a result set with recall 1 — possibly larger than
// K, which is why the paper reports precision < 1 for BPA.
//
// More hubs ⇒ residual mass is absorbed exactly sooner ⇒ fewer pushes ⇒
// faster queries (the Figure 4 trend); precision stays roughly flat
// (Figure 3).
#ifndef KDASH_BASELINES_BASIC_PUSH_H_
#define KDASH_BASELINES_BASIC_PUSH_H_

#include <cstdint>
#include <vector>

#include "common/top_k.h"
#include "common/types.h"
#include "sparse/csc_matrix.h"

namespace kdash::baselines {

struct BasicPushOptions {
  Scalar restart_prob = 0.95;
  // Number of hub nodes (highest total degree) with precomputed exact
  // vectors. The knob swept in Figures 3–4.
  int num_hubs = 1000;
  // Hard floor: stop pushing when the remaining residual drops below this
  // even if top-k separation has not been reached. Small enough that the
  // skipped mass is below any meaningful proximity.
  Scalar residual_floor = 1e-14;
  // Check the top-k separation condition every this many pushes.
  int check_interval = 64;
};

struct BasicPushStats {
  Index pushes = 0;
  Index hub_folds = 0;
  Scalar final_residual = 0.0;
  std::size_t answer_size = 0;  // can exceed K (recall-1 answer set)
};

class BasicPush {
 public:
  // Precomputes the hub vectors with an exact direct solver (one sparse LU
  // shared by all hubs).
  BasicPush(const sparse::CscMatrix& a, const BasicPushOptions& options);

  // Recall-1 top-k: every true top-k node is in the result; the result may
  // contain extra nodes whose bounds overlap the K-th. Ranked by estimate.
  std::vector<ScoredNode> TopK(NodeId query, std::size_t k,
                               BasicPushStats* stats = nullptr) const;

  int num_hubs() const { return static_cast<int>(hub_ids_.size()); }
  double precompute_seconds() const { return precompute_seconds_; }

 private:
  BasicPushOptions options_;
  NodeId num_nodes_ = 0;
  sparse::CscMatrix a_;                   // normalized adjacency
  std::vector<NodeId> hub_ids_;           // hub node ids
  std::vector<NodeId> hub_index_of_node_; // -1 for non-hubs
  std::vector<std::vector<Scalar>> hub_vectors_;  // exact RWR per hub
  double precompute_seconds_ = 0.0;
};

}  // namespace kdash::baselines

#endif  // KDASH_BASELINES_BASIC_PUSH_H_
