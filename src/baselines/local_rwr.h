// Partition-local RWR approximation (Sun, Qu, Chakrabarti, Faloutsos —
// "Neighborhood Formation and Anomaly Detection in Bipartite Graphs",
// ICDM 2005): the earliest of the approximate comparators discussed in the
// paper (Section 2).
//
// The graph is partitioned; a query's RWR is computed only on the
// partition containing the query node (renormalized subgraph); every node
// outside the partition is assigned proximity 0. Fast — the iteration
// touches one block — but blind to all cross-partition proximity, which is
// why NB_LIN superseded it and K-dash dominates both.
#ifndef KDASH_BASELINES_LOCAL_RWR_H_
#define KDASH_BASELINES_LOCAL_RWR_H_

#include <cstdint>
#include <vector>

#include "common/top_k.h"
#include "common/types.h"
#include "graph/graph.h"
#include "sparse/csc_matrix.h"

namespace kdash::baselines {

struct LocalRwrOptions {
  Scalar restart_prob = 0.95;
  std::uint64_t seed = 42;  // Louvain's node visiting order
  Scalar tolerance = 1e-12;
  int max_iterations = 1000;
};

class PartitionLocalRwr {
 public:
  PartitionLocalRwr(const graph::Graph& graph, const LocalRwrOptions& options);

  // Approximate proximities: exact *within* the query's partition
  // (restricted to the partition-induced subgraph), zero outside.
  std::vector<Scalar> Solve(NodeId query) const;

  std::vector<ScoredNode> TopK(NodeId query, std::size_t k) const;

  NodeId num_partitions() const { return static_cast<NodeId>(partitions_.size()); }
  NodeId PartitionOf(NodeId node) const {
    return partition_of_node_[static_cast<std::size_t>(node)];
  }
  NodeId PartitionSize(NodeId partition) const {
    return static_cast<NodeId>(
        partitions_[static_cast<std::size_t>(partition)].members.size());
  }

 private:
  struct Partition {
    std::vector<NodeId> members;       // global ids, ascending
    sparse::CscMatrix adjacency;       // renormalized induced subgraph
  };

  LocalRwrOptions options_;
  NodeId num_nodes_ = 0;
  std::vector<NodeId> partition_of_node_;
  std::vector<NodeId> local_id_of_node_;
  std::vector<Partition> partitions_;
};

}  // namespace kdash::baselines

#endif  // KDASH_BASELINES_LOCAL_RWR_H_
