// Annotated synchronization primitives.
//
// Thin wrappers over std::mutex / std::shared_mutex / std::condition_variable
// that carry the Clang Thread Safety attributes from common/annotations.h.
// The std types themselves are unannotated, so code locking a raw std::mutex
// is invisible to the analysis; code locking a kdash::Mutex is proven. All
// concurrent kdash subsystems (thread pool, engine searcher checkout, batch
// scheduler, fault registry, server connection registry) use these wrappers —
// new code should too, so its locking discipline is compiler-checked from the
// first commit.
//
// Zero-cost: every wrapper method is an inline forward to the std
// counterpart; the annotations compile away entirely.
//
// Condition-variable idiom (analysis-friendly — no predicate lambdas, the
// guarded fields are read in the locked scope the analysis can see):
//
//   MutexLock lock(mutex_);
//   while (!shutdown_ && queue_.empty()) not_empty_.Wait(mutex_);
#ifndef KDASH_COMMON_MUTEX_H_
#define KDASH_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/annotations.h"

namespace kdash {

// Exclusive mutex. Prefer MutexLock for scoped holds; Lock/Unlock exist for
// the rare hand-over-hand or conditional patterns.
class KDASH_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() KDASH_ACQUIRE() { mutex_.lock(); }
  void Unlock() KDASH_RELEASE() { mutex_.unlock(); }
  bool TryLock() KDASH_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

  // For CondVar only — going through the native handle bypasses the
  // analysis, so nothing else should touch it.
  std::mutex& native_handle() { return mutex_; }

 private:
  std::mutex mutex_;
};

// Reader/writer mutex (the fault registry: many concurrent Evaluate readers,
// rare Arm/Disarm writers).
class KDASH_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() KDASH_ACQUIRE() { mutex_.lock(); }
  void Unlock() KDASH_RELEASE() { mutex_.unlock(); }
  void LockShared() KDASH_ACQUIRE_SHARED() { mutex_.lock_shared(); }
  void UnlockShared() KDASH_RELEASE_SHARED() { mutex_.unlock_shared(); }

 private:
  std::shared_mutex mutex_;
};

// RAII exclusive hold. Supports scoped manual Unlock/Lock (the scheduler
// releases around its backend call), tracked so the destructor never
// double-unlocks — and so the analysis knows exactly where the capability is
// held.
class KDASH_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) KDASH_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.Lock();
  }
  ~MutexLock() KDASH_RELEASE() {
    if (locked_) mutex_.Unlock();
  }

  // Temporarily drop and retake the lock mid-scope.
  void Unlock() KDASH_RELEASE() {
    locked_ = false;
    mutex_.Unlock();
  }
  void Lock() KDASH_ACQUIRE() {
    mutex_.Lock();
    locked_ = true;
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
  bool locked_ = true;
};

// RAII shared (reader) hold on a SharedMutex.
class KDASH_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mutex) KDASH_ACQUIRE_SHARED(mutex)
      : mutex_(mutex) {
    mutex_.LockShared();
  }
  ~ReaderMutexLock() KDASH_RELEASE_GENERIC() { mutex_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mutex_;
};

// RAII exclusive (writer) hold on a SharedMutex.
class KDASH_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mutex) KDASH_ACQUIRE(mutex)
      : mutex_(mutex) {
    mutex_.Lock();
  }
  ~WriterMutexLock() KDASH_RELEASE() { mutex_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mutex_;
};

// Condition variable bound to kdash::Mutex. Wait atomically releases the
// (caller-held) mutex and reacquires it before returning, exactly like
// std::condition_variable — the annotation KDASH_REQUIRES(mutex) makes the
// caller's hold a compile-time contract. Spurious wakeups happen; always
// wait in a `while (!predicate)` loop.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mutex) KDASH_REQUIRES(mutex) {
    std::unique_lock<std::mutex> adopted(mutex.native_handle(),
                                         std::adopt_lock);
    cv_.wait(adopted);
    adopted.release();  // still locked; the caller's scope owns the hold
  }

  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(Mutex& mutex,
                           const std::chrono::time_point<Clock, Duration>&
                               deadline) KDASH_REQUIRES(mutex) {
    std::unique_lock<std::mutex> adopted(mutex.native_handle(),
                                         std::adopt_lock);
    const std::cv_status status = cv_.wait_until(adopted, deadline);
    adopted.release();
    return status;
  }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex& mutex,
                         const std::chrono::duration<Rep, Period>& timeout)
      KDASH_REQUIRES(mutex) {
    std::unique_lock<std::mutex> adopted(mutex.native_handle(),
                                         std::adopt_lock);
    const std::cv_status status = cv_.wait_for(adopted, timeout);
    adopted.release();
    return status;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace kdash

#endif  // KDASH_COMMON_MUTEX_H_
