#include "common/top_k.h"

namespace kdash {

std::vector<ScoredNode> TopKOfVector(const std::vector<Scalar>& scores,
                                     std::size_t k) {
  TopKHeap heap(k);
  for (std::size_t u = 0; u < scores.size(); ++u) {
    heap.Push(static_cast<NodeId>(u), scores[u]);
  }
  return heap.Sorted();
}

}  // namespace kdash
