// Wall-clock timing used by the benchmark harness and examples.
#ifndef KDASH_COMMON_TIMER_H_
#define KDASH_COMMON_TIMER_H_

#include <chrono>

namespace kdash {

// Measures elapsed wall-clock time in seconds. Started on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  // Seconds elapsed since construction or the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }
  double Micros() const { return Seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace kdash

#endif  // KDASH_COMMON_TIMER_H_
