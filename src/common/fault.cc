#include "common/fault.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/mutex.h"
#include "obs/metrics.h"

namespace kdash::fault {

namespace internal {
std::atomic<int> g_armed_sites{0};
}  // namespace internal

namespace {

// SplitMix64: a full-period mixer whose output is a pure function of its
// input, so the n-th draw of a site depends only on (seed, n).
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

struct Site {
  FaultSpec spec;
  std::atomic<std::uint64_t> evaluations{0};
  std::atomic<std::uint64_t> fires{0};
};

struct Registry {
  SharedMutex mutex;
  // shared_ptr so Evaluate can drop the registry lock before rolling the
  // draw — Disarm during a concurrent evaluation then just orphans the
  // site instead of racing its counters' lifetime.
  std::unordered_map<std::string, std::shared_ptr<Site>> sites
      KDASH_GUARDED_BY(mutex);
};

Registry& GetRegistry() {
  // kdash-lint: allow(naked-new) intentionally leaked so armed sites stay
  // valid for threads still running during static destruction.
  static Registry* registry = new Registry();
  return *registry;
}

// Arm from KDASH_FAULTS once per process, before main touches any site.
// Lives here (not in a header) so every binary linking fault.cc gets env
// arming without an init call; the registry's function-local static makes
// the initialization order safe.
const bool g_env_armed = [] {
  const char* spec = std::getenv("KDASH_FAULTS");
  if (spec != nullptr && *spec != '\0') {
    const Status status = ArmFromSpec(spec);
    if (!status.ok()) {
      std::fprintf(stderr, "KDASH_FAULTS ignored: %s\n",
                   status.ToString().c_str());
    }
  }
  return true;
}();

// Parses one canonical code name ("DATA_LOSS") back to its enum value.
bool ParseCode(std::string_view name, StatusCode* code) {
  static constexpr StatusCode kCodes[] = {
      StatusCode::kInvalidArgument,  StatusCode::kNotFound,
      StatusCode::kFailedPrecondition, StatusCode::kDataLoss,
      StatusCode::kUnimplemented,    StatusCode::kInternal,
      StatusCode::kDeadlineExceeded, StatusCode::kUnavailable,
      StatusCode::kResourceExhausted,
  };
  for (const StatusCode candidate : kCodes) {
    if (name == StatusCodeName(candidate)) {
      *code = candidate;
      return true;
    }
  }
  return false;
}

}  // namespace

namespace internal {

Status Evaluate(std::string_view site) {
  Registry& registry = GetRegistry();
  std::shared_ptr<Site> entry;
  {
    ReaderMutexLock lock(registry.mutex);
    const auto it = registry.sites.find(std::string(site));
    if (it == registry.sites.end()) return Status::Ok();
    entry = it->second;
  }

  const std::uint64_t n =
      entry->evaluations.fetch_add(1, std::memory_order_relaxed);
  const FaultSpec& spec = entry->spec;

  bool fire;
  if (!spec.fire_on_hits.empty()) {
    fire = std::binary_search(spec.fire_on_hits.begin(),
                              spec.fire_on_hits.end(), n);
  } else {
    // hash(seed, n) → uniform in [0, 1); 53 mantissa bits keep the compare
    // exact for any representable probability.
    const double draw =
        static_cast<double>(Mix64(spec.seed ^ Mix64(n)) >> 11) * 0x1.0p-53;
    fire = draw < spec.probability;
  }
  if (!fire) return Status::Ok();

  // max_fires: claim a fire slot atomically so concurrent evaluations
  // never overshoot the budget.
  std::uint64_t fired = entry->fires.load(std::memory_order_relaxed);
  for (;;) {
    if (fired >= spec.max_fires) return Status::Ok();
    if (entry->fires.compare_exchange_weak(fired, fired + 1,
                                           std::memory_order_relaxed)) {
      break;
    }
  }
  // Export the fire through the metric registry too: per-site SiteStats die
  // with Disarm, but a chaos run's post-mortem reads the process-cumulative
  // "fault.fired.<site>" counters out of the same stats snapshot as every
  // other metric. Fires are rare and already paid for a registry lookup's
  // worth of work, so resolving by name here is fine.
  obs::MetricRegistry::Global()
      .GetCounter("fault.fired." + std::string(site))
      .Add();
  return Status(spec.code, "injected fault at '" + std::string(site) +
                               "' (hit #" + std::to_string(n) + ")");
}

}  // namespace internal

void Arm(std::string_view site, FaultSpec spec) {
  KDASH_CHECK(!site.empty()) << "fault site name must be non-empty";
  KDASH_CHECK(spec.code != StatusCode::kOk)
      << "cannot inject an OK Status at '" << std::string(site) << "'";
  spec.probability = std::clamp(spec.probability, 0.0, 1.0);
  std::sort(spec.fire_on_hits.begin(), spec.fire_on_hits.end());

  auto entry = std::make_shared<Site>();
  entry->spec = std::move(spec);

  Registry& registry = GetRegistry();
  WriterMutexLock lock(registry.mutex);
  auto [it, inserted] =
      registry.sites.insert_or_assign(std::string(site), std::move(entry));
  (void)it;
  if (inserted) {
    internal::g_armed_sites.fetch_add(1, std::memory_order_relaxed);
  }
}

void Disarm(std::string_view site) {
  Registry& registry = GetRegistry();
  WriterMutexLock lock(registry.mutex);
  if (registry.sites.erase(std::string(site)) > 0) {
    internal::g_armed_sites.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  Registry& registry = GetRegistry();
  WriterMutexLock lock(registry.mutex);
  internal::g_armed_sites.fetch_sub(static_cast<int>(registry.sites.size()),
                                    std::memory_order_relaxed);
  registry.sites.clear();
}

Status ArmFromSpec(std::string_view spec) {
  // Parse every entry before arming any, so a bad spec arms nothing.
  std::vector<std::pair<std::string, FaultSpec>> parsed;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', begin), spec.size());
    const std::string_view entry = spec.substr(begin, comma - begin);
    begin = comma + 1;
    if (entry.empty()) continue;

    const auto fail = [&](const std::string& why) {
      return Status::InvalidArgument("bad KDASH_FAULTS entry \"" +
                                     std::string(entry) + "\": " + why);
    };
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return fail("expected site=probability[@seed][:CODE][#max_fires]");
    }
    std::string site(entry.substr(0, eq));
    std::string_view rest = entry.substr(eq + 1);

    // Split off the optional suffixes right-to-left: #max_fires, :CODE,
    // @seed — each delimiter appears at most once and in this order.
    FaultSpec fault;
    const auto take_suffix = [&rest](char delim) -> std::string_view {
      const std::size_t at = rest.find(delim);
      if (at == std::string_view::npos) return {};
      std::string_view suffix = rest.substr(at + 1);
      rest = rest.substr(0, at);
      return suffix;
    };
    const std::string_view max_text = take_suffix('#');
    const std::string_view code_text = take_suffix(':');
    const std::string_view seed_text = take_suffix('@');

    const auto parse_u64 = [](std::string_view text, std::uint64_t* out) {
      if (text.empty()) return false;
      char* end = nullptr;
      const std::string copy(text);
      *out = std::strtoull(copy.c_str(), &end, 10);
      return end == copy.c_str() + copy.size();
    };
    {
      if (rest.empty()) return fail("missing probability");
      char* end = nullptr;
      const std::string copy(rest);
      fault.probability = std::strtod(copy.c_str(), &end);
      // Written as !(in-range) so NaN — which fails every comparison —
      // is rejected too.
      if (end != copy.c_str() + copy.size() ||
          !(fault.probability >= 0.0 && fault.probability <= 1.0)) {
        return fail("probability must be a number in [0, 1]");
      }
    }
    if (!seed_text.empty() && !parse_u64(seed_text, &fault.seed)) {
      return fail("seed must be a non-negative integer");
    }
    if (!code_text.empty() && !ParseCode(code_text, &fault.code)) {
      return fail("unknown status code \"" + std::string(code_text) + "\"");
    }
    if (!max_text.empty() && !parse_u64(max_text, &fault.max_fires)) {
      return fail("max_fires must be a non-negative integer");
    }
    parsed.emplace_back(std::move(site), std::move(fault));
  }
  for (auto& [site, fault] : parsed) Arm(site, std::move(fault));
  return Status::Ok();
}

SiteStats GetStats(std::string_view site) {
  Registry& registry = GetRegistry();
  ReaderMutexLock lock(registry.mutex);
  const auto it = registry.sites.find(std::string(site));
  if (it == registry.sites.end()) return {};
  SiteStats stats;
  stats.evaluations = it->second->evaluations.load(std::memory_order_relaxed);
  stats.fires = it->second->fires.load(std::memory_order_relaxed);
  return stats;
}

std::vector<std::string> ArmedSites() {
  Registry& registry = GetRegistry();
  ReaderMutexLock lock(registry.mutex);
  std::vector<std::string> names;
  names.reserve(registry.sites.size());
  for (const auto& [name, site] : registry.sites) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace kdash::fault
