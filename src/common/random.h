// Deterministic pseudo-random number generation.
//
// Every stochastic component of the library (graph generators, randomized
// SVD, random reordering, workload query sampling) draws from this engine so
// that experiments are reproducible from a single seed.
#ifndef KDASH_COMMON_RANDOM_H_
#define KDASH_COMMON_RANDOM_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>

#include "common/check.h"
#include "common/types.h"

namespace kdash {

// xoshiro256** by Blackman & Vigna, seeded through SplitMix64. Fast,
// high-quality, and fully deterministic across platforms (unlike
// std::mt19937 + std::uniform_*_distribution, whose outputs are not
// specified identically across standard libraries).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { Seed(seed); }

  void Seed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t NextUint64() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  // Uniform integer in [0, bound). `bound` must be positive.
  std::uint64_t NextBounded(std::uint64_t bound) {
    KDASH_DCHECK(bound > 0);
    // Lemire's nearly-divisionless rejection method.
    std::uint64_t x = NextUint64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = NextUint64();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi], inclusive.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi) {
    KDASH_DCHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    NextBounded(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  NodeId NextNode(NodeId num_nodes) {
    return static_cast<NodeId>(NextBounded(static_cast<std::uint64_t>(num_nodes)));
  }

  // Standard normal via Box–Muller (sufficient for randomized SVD sketches).
  double NextGaussian() {
    if (has_cached_gaussian_) {
      has_cached_gaussian_ = false;
      return cached_gaussian_;
    }
    double u1 = NextDouble();
    while (u1 <= 0.0) u1 = NextDouble();
    const double u2 = NextDouble();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_gaussian_ = radius * std::sin(theta);
    has_cached_gaussian_ = true;
    return radius * std::cos(theta);
  }

  // Fisher–Yates shuffle.
  template <typename Container>
  void Shuffle(Container& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = NextBounded(i);
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace kdash

#endif  // KDASH_COMMON_RANDOM_H_
