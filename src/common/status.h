// Recoverable-error primitives for the serving API.
//
// The library's KDASH_CHECK macros abort, which is the right contract for
// internal invariants ("this can only fire on a library bug") but fatal for
// a long-lived server handed untrusted inputs: a corrupt index file or an
// out-of-range query id must come back to the caller, not kill the process.
// `Status` carries a canonical error code plus a human-readable message;
// `Result<T>` is a value-or-Status union. Both are the return currency of
// `kdash::Engine` and of index persistence.
#ifndef KDASH_COMMON_STATUS_H_
#define KDASH_COMMON_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

#include "common/check.h"

namespace kdash {

// Canonical error space (a deliberate subset of the gRPC/absl codes).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,     // caller passed a malformed query/option
  kNotFound,            // missing file, missing edge, missing node
  kFailedPrecondition,  // operation not valid for this object's state
  kDataLoss,            // corrupt or truncated index stream
  kUnimplemented,       // feature not supported by this backend
  kInternal,            // invariant violation surfaced as an error
  kDeadlineExceeded,    // request expired before it could be served
  kUnavailable,         // service is shutting down or not accepting work
  kResourceExhausted,   // admission control shed the request (overload)
};

const char* StatusCodeName(StatusCode code);

// Inverse of StatusCodeName ("UNAVAILABLE" → kUnavailable, ...); an
// unrecognized name maps to kInternal.
StatusCode StatusCodeFromName(std::string_view name);

class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status DataLoss(std::string message) {
    return Status(StatusCode::kDataLoss, std::move(message));
  }
  static Status Unimplemented(std::string message) {
    return Status(StatusCode::kUnimplemented, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // The one sanctioned way to drop a Status. Status is [[nodiscard]]
  // class-wide, so an ignored return is a compile error (-Werror=
  // unused-result); a call site that genuinely cannot act on failure —
  // best-effort cleanup on an already-failing path, a destructor — writes
  // `DoThing().IgnoreError();` and the intent survives review and grep.
  void IgnoreError() const {}

  // "OK" or "INVALID_ARGUMENT: node 17 out of range".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& out, const Status& status) {
  return out << status.ToString();
}

// Value-or-error. A Result is either OK and holds a T, or non-OK and holds
// only the Status. Accessing value() on a non-OK Result is a programming
// error and aborts (the caller should have checked ok()).
template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit from a value or from a non-OK Status, so functions can
  // `return MakeIndex();` and `return Status::DataLoss(...);` alike.
  Result(T value) : value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    KDASH_CHECK(!status_.ok()) << "Result constructed from an OK Status";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  // See Status::IgnoreError — the explicit discard for a Result whose
  // value *and* error are both irrelevant (rare; prefer checking ok()).
  void IgnoreError() const {}

  T& value() & {
    KDASH_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  const T& value() const& {
    KDASH_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    KDASH_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *std::move(value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;  // OK iff value_ holds a T
  std::optional<T> value_;
};

// Early-return plumbing:
//
//   KDASH_RETURN_IF_ERROR(WriteHeader(out));
//   KDASH_ASSIGN_OR_RETURN(auto index, KDashIndex::Load(in));
#define KDASH_RETURN_IF_ERROR(expr)                    \
  do {                                                 \
    ::kdash::Status kdash_status_internal_ = (expr);   \
    if (!kdash_status_internal_.ok()) {                \
      return kdash_status_internal_;                   \
    }                                                  \
  } while (false)

#define KDASH_STATUS_CONCAT_INNER(a, b) a##b
#define KDASH_STATUS_CONCAT(a, b) KDASH_STATUS_CONCAT_INNER(a, b)

#define KDASH_ASSIGN_OR_RETURN(lhs, expr)                                  \
  auto KDASH_STATUS_CONCAT(kdash_result_, __LINE__) = (expr);              \
  if (!KDASH_STATUS_CONCAT(kdash_result_, __LINE__).ok()) {                \
    return KDASH_STATUS_CONCAT(kdash_result_, __LINE__).status();          \
  }                                                                        \
  lhs = std::move(KDASH_STATUS_CONCAT(kdash_result_, __LINE__)).value()

}  // namespace kdash

#endif  // KDASH_COMMON_STATUS_H_
