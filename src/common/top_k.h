// Bounded top-k accumulator over (score, node) pairs.
//
// Used by every search engine in the library (K-dash, power iteration,
// NB_LIN, B_LIN, Basic Push) so that tie-breaking is identical everywhere:
// higher score wins; on equal scores the smaller node id wins. Deterministic
// tie-breaking is what lets the exactness tests compare engines node-by-node.
#ifndef KDASH_COMMON_TOP_K_H_
#define KDASH_COMMON_TOP_K_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace kdash {

// A node together with its RWR proximity score.
struct ScoredNode {
  NodeId node = kInvalidNode;
  Scalar score = 0.0;

  friend bool operator==(const ScoredNode&, const ScoredNode&) = default;
};

// Ranking order: by descending score, ties broken by ascending node id.
inline bool RanksHigher(const ScoredNode& a, const ScoredNode& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.node < b.node;
}

// Keeps the k highest-ranked entries pushed so far. Push is O(log k).
class TopKHeap {
 public:
  explicit TopKHeap(std::size_t k) : k_(k) { KDASH_CHECK(k > 0); }

  // Current K-th highest score (the pruning threshold θ in Algorithm 4).
  // Zero while fewer than k entries are held, matching the paper's device of
  // seeding the candidate set with K dummy nodes of proximity 0.
  Scalar Threshold() const {
    if (heap_.size() < k_) return 0.0;
    return heap_.front().score;
  }

  bool Full() const { return heap_.size() >= k_; }
  std::size_t Size() const { return heap_.size(); }

  // Offers a candidate; keeps it only if it ranks above the current K-th.
  void Push(NodeId node, Scalar score) {
    const ScoredNode entry{node, score};
    if (heap_.size() < k_) {
      heap_.push_back(entry);
      std::push_heap(heap_.begin(), heap_.end(), RanksHigher);
      return;
    }
    if (RanksHigher(entry, heap_.front())) {
      std::pop_heap(heap_.begin(), heap_.end(), RanksHigher);
      heap_.back() = entry;
      std::push_heap(heap_.begin(), heap_.end(), RanksHigher);
    }
  }

  // Returns the held entries ranked best-first. Does not modify the heap.
  std::vector<ScoredNode> Sorted() const {
    std::vector<ScoredNode> result = heap_;
    std::sort(result.begin(), result.end(), RanksHigher);
    return result;
  }

 private:
  std::size_t k_;
  // Min-heap on RanksHigher: front() is the worst held entry.
  std::vector<ScoredNode> heap_;
};

// Convenience: the top-k entries of a full score vector, ranked best-first.
std::vector<ScoredNode> TopKOfVector(const std::vector<Scalar>& scores,
                                     std::size_t k);

}  // namespace kdash

#endif  // KDASH_COMMON_TOP_K_H_
