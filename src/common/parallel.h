// Shared parallel-execution layer.
//
// One fixed pool of worker threads serves both the build path (parallel
// triangular inversion) and the serve path (batch querying). The calling
// thread always participates as rank 0, so a pool of size T spawns T-1
// threads and delivers exactly T concurrent executors with no idle caller.
//
// Determinism contract: ParallelFor hands out [begin, end) in chunks of at
// most `grain` via an atomic cursor. Which *rank* runs which chunk is
// nondeterministic, but the chunk boundaries themselves are fixed
// (begin, begin+grain, begin+2·grain, …), so any computation whose output
// per chunk depends only on the chunk — not on the rank or on execution
// order — is bit-reproducible across runs and across thread counts.
#ifndef KDASH_COMMON_PARALLEL_H_
#define KDASH_COMMON_PARALLEL_H_

#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/types.h"

namespace kdash {

namespace internal {
// Parses a KDASH_NUM_THREADS-style value: returns the thread count in
// [1, 1024], or 0 when `text` is null, empty, non-numeric, or out of range
// (meaning "fall back to hardware concurrency"). Exposed for tests.
int ParseNumThreads(const char* text);
}  // namespace internal

// The process-default thread count: the KDASH_NUM_THREADS environment
// variable when set to a valid positive integer, otherwise
// std::thread::hardware_concurrency() (at least 1).
int DefaultNumThreads();

class ThreadPool {
 public:
  // num_threads <= 0 means DefaultNumThreads(). A pool of size 1 runs
  // everything inline on the caller and spawns nothing.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Invokes fn(rank) once per rank in [0, num_threads()) concurrently and
  // blocks until every invocation returns; rank 0 runs on the calling
  // thread. Submissions from different threads are serialized; calling
  // back into the same pool from inside fn deadlocks (not reentrant).
  // The first exception thrown by any rank is rethrown on the caller.
  void RunOnAllThreads(const std::function<void(int)>& fn);

  // Dynamically-scheduled parallel loop over [begin, end): workers pull
  // chunks of at most `grain` indices and call fn(chunk_begin, chunk_end,
  // rank). Chunk boundaries are deterministic (see header comment); chunk
  // → rank assignment is not. grain <= 0 is treated as 1.
  //
  // Barrier guarantee: when ParallelFor returns, every fn invocation has
  // returned and its writes happen-before the caller's subsequent reads —
  // and therefore before any later job on the same pool. Stage-by-stage
  // pipelines (the level-scheduled LU factors one dependency level per
  // call) need no synchronization beyond this.
  void ParallelFor(Index begin, Index end, Index grain,
                   const std::function<void(Index, Index, int)>& fn);

  // Lazily-constructed process-wide pool of DefaultNumThreads() workers.
  // Sized once at first use; later changes to KDASH_NUM_THREADS are
  // ignored by this instance (construct a local ThreadPool instead).
  static ThreadPool& Shared();

 private:
  void WorkerLoop(int rank);

  int num_threads_ = 1;
  std::vector<std::thread> workers_;

  // Serializes concurrent RunOnAllThreads calls from different threads.
  Mutex submit_mutex_;

  // Guards the job-dispatch state below; work_cv_ wakes workers on a new
  // generation (or shutdown), done_cv_ wakes the submitter when the last
  // active worker finishes.
  Mutex mutex_;
  CondVar work_cv_;
  CondVar done_cv_;
  const std::function<void(int)>* job_ KDASH_GUARDED_BY(mutex_) = nullptr;
  std::uint64_t generation_ KDASH_GUARDED_BY(mutex_) = 0;
  int active_ KDASH_GUARDED_BY(mutex_) = 0;
  bool shutdown_ KDASH_GUARDED_BY(mutex_) = false;
  std::exception_ptr first_error_ KDASH_GUARDED_BY(mutex_);
};

// Convenience: ParallelFor on the shared pool.
void ParallelFor(Index begin, Index end, Index grain,
                 const std::function<void(Index, Index, int)>& fn);

// The library-wide pool-selection policy for a stage-level `num_threads`
// knob: <= 0 borrows the process-wide shared pool; any explicit count gets
// a dedicated pool owned by `local` (a pool of 1 spawns nothing and runs
// inline). The returned reference is valid as long as `local` lives.
ThreadPool& SelectPool(int num_threads, std::unique_ptr<ThreadPool>& local);

}  // namespace kdash

#endif  // KDASH_COMMON_PARALLEL_H_
