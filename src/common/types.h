// Fundamental scalar types shared by every module.
#ifndef KDASH_COMMON_TYPES_H_
#define KDASH_COMMON_TYPES_H_

#include <cstdint>

namespace kdash {

// Node identifier. Graphs in this library are bounded by 2^31 - 1 nodes,
// which comfortably covers the datasets evaluated in the paper (largest:
// Email, 265,214 nodes).
using NodeId = std::int32_t;

// Index into a nonzero array (edge arrays, sparse-matrix value arrays).
// 64-bit: the explicit triangular inverses can have far more nonzeros than
// the input graph has edges.
using Index = std::int64_t;

// Proximity scores, matrix values, and edge weights.
using Scalar = double;

inline constexpr NodeId kInvalidNode = -1;

}  // namespace kdash

#endif  // KDASH_COMMON_TYPES_H_
