// Clang Thread Safety Analysis annotations.
//
// These macros attach compile-time locking contracts to data and code:
// which mutex guards which field, which lock a function requires, which
// locks a function acquires or releases. Under Clang with -Wthread-safety
// (the static-analysis CI job builds with -Werror=thread-safety) every
// violation — reading a KDASH_GUARDED_BY field without its mutex, calling
// a KDASH_REQUIRES function unlocked, forgetting to release — is a compile
// error on *every* path, not just the interleavings a TSan run happens to
// exercise. Under GCC (or any compiler without the attributes) every macro
// expands to nothing, so the annotations are free documentation.
//
// Conventions used in this codebase:
//   - Every mutex-protected field is declared KDASH_GUARDED_BY(mutex_); a
//     pointer whose *pointee* is protected uses KDASH_PT_GUARDED_BY.
//   - Shared mutable state accessed from lambdas lives in a named struct
//     with annotated members, never in raw captured locals — the analysis
//     tracks members, and the struct names the invariant (see
//     kdash_server.cc's ConnectionRegistry).
//   - Private helpers that assume a caller-held lock are annotated
//     KDASH_REQUIRES(mutex_) instead of re-locking.
//   - Condition-variable wait predicates are written as inline `while
//     (!cond) cv.Wait(mutex)` loops in the locked scope, not as lambdas —
//     the analysis proves the predicate's field accesses that way.
//   - KDASH_NO_THREAD_SAFETY_ANALYSIS is a last resort and must carry a
//     one-line justification at the use site.
//
// What -Wthread-safety guarantees — and does not. It proves lock *discipline*
// (annotated data is only touched with the right capability held) within
// analyzed code. It does not find missing annotations (an unannotated field
// is invisible), cannot see through type-erased boundaries
// (std::function, virtual calls), and does not model lock *ordering*, so
// deadlocks remain TSan/review territory. Keep the TSan CI job.
//
// The macro set mirrors the LLVM documentation's mutex.h reference header
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), prefixed to
// avoid colliding with other libraries' copies (abseil, protobuf).
#ifndef KDASH_COMMON_ANNOTATIONS_H_
#define KDASH_COMMON_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define KDASH_THREAD_ANNOTATION_IMPL(x) __attribute__((x))
#else
#define KDASH_THREAD_ANNOTATION_IMPL(x)  // no-op off Clang
#endif

// Type attribute: this class is a lockable capability ("mutex").
#define KDASH_CAPABILITY(x) KDASH_THREAD_ANNOTATION_IMPL(capability(x))

// Type attribute: this class is an RAII object that acquires a capability
// in its constructor and releases it in its destructor.
#define KDASH_SCOPED_CAPABILITY KDASH_THREAD_ANNOTATION_IMPL(scoped_lockable)

// Data attribute: reads require the capability held (shared or exclusive);
// writes require it held exclusively.
#define KDASH_GUARDED_BY(x) KDASH_THREAD_ANNOTATION_IMPL(guarded_by(x))

// Data attribute: like KDASH_GUARDED_BY, but protects the pointed-to data
// rather than the pointer itself.
#define KDASH_PT_GUARDED_BY(x) KDASH_THREAD_ANNOTATION_IMPL(pt_guarded_by(x))

// Function attribute: caller must hold the capability (exclusively / at
// least shared) when calling; the function neither acquires nor releases.
#define KDASH_REQUIRES(...) \
  KDASH_THREAD_ANNOTATION_IMPL(requires_capability(__VA_ARGS__))
#define KDASH_REQUIRES_SHARED(...) \
  KDASH_THREAD_ANNOTATION_IMPL(requires_shared_capability(__VA_ARGS__))

// Function attribute: the function acquires the capability and holds it
// past the return (Lock) / releases a held capability (Unlock).
#define KDASH_ACQUIRE(...) \
  KDASH_THREAD_ANNOTATION_IMPL(acquire_capability(__VA_ARGS__))
#define KDASH_ACQUIRE_SHARED(...) \
  KDASH_THREAD_ANNOTATION_IMPL(acquire_shared_capability(__VA_ARGS__))
#define KDASH_RELEASE(...) \
  KDASH_THREAD_ANNOTATION_IMPL(release_capability(__VA_ARGS__))
#define KDASH_RELEASE_SHARED(...) \
  KDASH_THREAD_ANNOTATION_IMPL(release_shared_capability(__VA_ARGS__))
#define KDASH_RELEASE_GENERIC(...) \
  KDASH_THREAD_ANNOTATION_IMPL(release_generic_capability(__VA_ARGS__))

// Function attribute: TryLock — acquires only when returning `ret`.
#define KDASH_TRY_ACQUIRE(ret, ...) \
  KDASH_THREAD_ANNOTATION_IMPL(try_acquire_capability(ret, __VA_ARGS__))

// Function attribute: caller must NOT hold the capability (non-reentrant
// public entry points that lock internally).
#define KDASH_EXCLUDES(...) \
  KDASH_THREAD_ANNOTATION_IMPL(locks_excluded(__VA_ARGS__))

// Function attribute: returns a reference to the named capability (for
// accessors exposing an internal mutex).
#define KDASH_RETURN_CAPABILITY(x) \
  KDASH_THREAD_ANNOTATION_IMPL(lock_returned(x))

// Function attribute: opt this function out of the analysis entirely.
// Last resort; justify at the use site.
#define KDASH_NO_THREAD_SAFETY_ANALYSIS \
  KDASH_THREAD_ANNOTATION_IMPL(no_thread_safety_analysis)

// Expression escape hatch: assert (at runtime, by contract rather than by
// check) that the capability is held — for call graphs the analysis cannot
// follow, e.g. a callback invoked only under a documented lock.
#define KDASH_ASSERT_CAPABILITY(x) \
  KDASH_THREAD_ANNOTATION_IMPL(assert_capability(x))

#endif  // KDASH_COMMON_ANNOTATIONS_H_
