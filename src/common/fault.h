// kdash::fault — deterministic, seedable fault injection.
//
// Serving code grows recovery paths (shard retries, degraded merges, load
// shedding) that production rarely exercises and a debugger cannot schedule.
// This framework makes failures a first-class, reproducible input: code
// declares *named injection sites* at the exact points where the real world
// can fail (a file read, a shard search, a socket write), and tests or
// operators *arm* those sites with a deterministic schedule. A disarmed
// site costs one relaxed atomic load and a predicted branch — nothing else:
// no string lookup, no Status construction, no lock.
//
// Declaring a site (in a function returning Status or Result<T>):
//
//   KDASH_INJECT_FAULT("index_io.read");   // returns the injected Status
//
// Arming programmatically (tests):
//
//   fault::FaultSpec spec;
//   spec.probability = 0.25;               // each evaluation fires at 25%
//   spec.seed = 42;                        // same seed → same fire pattern
//   spec.code = StatusCode::kDataLoss;
//   fault::ScopedFault guard("index_io.read", spec);  // disarms on scope exit
//
// Arming from the environment (chaos CI, ops):
//
//   KDASH_FAULTS=index_io.read=0.01@7,sharded.shard_search=0.5@3:UNAVAILABLE
//
// Spec grammar (comma-separated entries):
//   site=probability[@seed][:CODE][#max_fires]
// CODE is a canonical status-code name (UNAVAILABLE, DATA_LOSS, ...);
// the default injected code is kUnavailable.
//
// Determinism: each site keeps an evaluation counter; the n-th evaluation
// fires iff hash(seed, n) < probability (or iff n is listed in
// fire_on_hits). The fire pattern is a pure function of (seed, n), so a
// failing chaos run reproduces from its logged KDASH_FAULTS string alone —
// under concurrency the *set* of fired draws is fixed even when which
// thread observes which draw is not.
#ifndef KDASH_COMMON_FAULT_H_
#define KDASH_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace kdash::fault {

// Canonical registry of every injection site compiled into the library and
// tools. A site name is lowercase dot-separated segments
// ([a-z][a-z0-9_]*, '.'-joined); the literal `<N>` marks a parameterized
// family (one member per shard / connection / ...). tools/kdash_lint.py
// cross-checks every KDASH_INJECT_FAULT / fault::Check literal in the tree
// against this list — an injection point whose site is missing here, or a
// registry entry no code evaluates, fails the lint gate, so this table and
// the code can never drift apart. Keep it sorted.
inline constexpr std::string_view kKnownFaultSites[] = {
    "index_io.open",              // opening an index file for reading
    "index_io.read",              // any checked read primitive (Pod/Vec)
    "index_io.write",             // index save stream write
    "remote.connect",             // router→worker TCP connect attempt
    "remote.recv",                // router reading a worker's response line
    "remote.send",                // router writing a request line to a worker
    "scheduler.dispatch",         // BatchScheduler backend dispatch
    "server.send",                // kdash_server socket write
    "sharded.shard_search",       // any shard's search attempt
    "sharded.shard_search.s<N>",  // shard N's search attempt, exactly
};

struct FaultSpec {
  // Chance that one evaluation of the site fires, in [0, 1]. Ignored when
  // fire_on_hits is non-empty.
  double probability = 1.0;

  // Seed for the per-evaluation hash; same (seed, probability) → the same
  // fire pattern, independent of thread interleaving.
  std::uint64_t seed = 0;

  // Status returned by a firing site.
  StatusCode code = StatusCode::kUnavailable;

  // Stop firing after this many fires (the site stays armed but inert);
  // e.g. max_fires = 1 makes a shard fail exactly once, so a retry must
  // succeed. Defaults to unlimited.
  std::uint64_t max_fires = std::numeric_limits<std::uint64_t>::max();

  // Exact schedule: fire on precisely these 0-based evaluation indices
  // (overrides probability). Sorted or not — Arm() sorts a copy.
  std::vector<std::uint64_t> fire_on_hits;
};

namespace internal {
// Count of armed sites; the whole framework's fast path keys off it.
extern std::atomic<int> g_armed_sites;
// Slow path: look the site up and roll its deterministic draw.
[[nodiscard]] Status Evaluate(std::string_view site);
}  // namespace internal

// True iff any site is armed. One relaxed load — the only cost a disarmed
// process ever pays per injection point.
inline bool AnyArmed() {
  return internal::g_armed_sites.load(std::memory_order_relaxed) > 0;
}

// Evaluate a site: Ok when nothing is armed, when this site is not armed,
// or when the armed site's draw does not fire; the injected Status
// otherwise. Thread-safe.
[[nodiscard]] inline Status Check(std::string_view site) {
  if (!AnyArmed()) return Status::Ok();
  return internal::Evaluate(site);
}

// Arm / re-arm a site (replaces any previous spec and resets counters).
// probability is clamped to [0, 1]; code kOk is rejected by KDASH_CHECK
// (an injected "success" is meaningless).
void Arm(std::string_view site, FaultSpec spec);

// Disarm one site / every site. Disarming an unarmed site is a no-op.
void Disarm(std::string_view site);
void DisarmAll();

// Parse and arm a KDASH_FAULTS-style spec string (grammar above). On a
// malformed entry nothing is armed and kInvalidArgument names the bad
// entry. An empty string arms nothing and is OK.
[[nodiscard]] Status ArmFromSpec(std::string_view spec);

// Per-site counters, for tests and for logging which faults actually hit.
struct SiteStats {
  std::uint64_t evaluations = 0;
  std::uint64_t fires = 0;
};
// Zeros for unknown/disarmed sites (counters die with Disarm).
SiteStats GetStats(std::string_view site);
std::vector<std::string> ArmedSites();

// RAII arming for tests: arms in the constructor, disarms in the
// destructor, so a failing ASSERT cannot leak an armed site into the next
// test case.
class ScopedFault {
 public:
  ScopedFault(std::string_view site, FaultSpec spec) : site_(site) {
    Arm(site_, std::move(spec));
  }
  ~ScopedFault() { Disarm(site_); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  std::string site_;
};

}  // namespace kdash::fault

// Injection-site macro for Status/Result<T> functions: evaluates the site
// and early-returns the injected Status when it fires. Disarmed cost: one
// relaxed atomic load.
#define KDASH_INJECT_FAULT(site)                                     \
  do {                                                               \
    if (::kdash::fault::AnyArmed()) {                                \
      ::kdash::Status kdash_injected_ =                              \
          ::kdash::fault::internal::Evaluate(site);                  \
      if (!kdash_injected_.ok()) return kdash_injected_;             \
    }                                                                \
  } while (false)

#endif  // KDASH_COMMON_FAULT_H_
