// Lightweight runtime assertion macros.
//
// KDASH_CHECK is always on (it guards API misuse and data-structure
// invariants whose violation would corrupt results); KDASH_DCHECK compiles
// away in NDEBUG builds and is used on hot paths.
#ifndef KDASH_COMMON_CHECK_H_
#define KDASH_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace kdash::internal {

[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);

// Accumulates an optional streamed message for a failed check.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  [[noreturn]] ~CheckMessageBuilder() {
    CheckFailed(file_, line_, expr_, stream_.str());
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace kdash::internal

#define KDASH_CHECK(condition)                                       \
  if (condition) {                                                   \
  } else                                                             \
    ::kdash::internal::CheckMessageBuilder(__FILE__, __LINE__,       \
                                           #condition)

#define KDASH_CHECK_EQ(a, b) KDASH_CHECK((a) == (b))
#define KDASH_CHECK_NE(a, b) KDASH_CHECK((a) != (b))
#define KDASH_CHECK_LT(a, b) KDASH_CHECK((a) < (b))
#define KDASH_CHECK_LE(a, b) KDASH_CHECK((a) <= (b))
#define KDASH_CHECK_GT(a, b) KDASH_CHECK((a) > (b))
#define KDASH_CHECK_GE(a, b) KDASH_CHECK((a) >= (b))

#ifdef NDEBUG
#define KDASH_DCHECK(condition) \
  if (true) {                   \
  } else                        \
    ::kdash::internal::CheckMessageBuilder(__FILE__, __LINE__, #condition)
#else
#define KDASH_DCHECK(condition) KDASH_CHECK(condition)
#endif

#define KDASH_DCHECK_EQ(a, b) KDASH_DCHECK((a) == (b))
#define KDASH_DCHECK_LT(a, b) KDASH_DCHECK((a) < (b))
#define KDASH_DCHECK_LE(a, b) KDASH_DCHECK((a) <= (b))
#define KDASH_DCHECK_GE(a, b) KDASH_DCHECK((a) >= (b))

#endif  // KDASH_COMMON_CHECK_H_
