#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>

#include "common/check.h"

namespace kdash {

namespace internal {

int ParseNumThreads(const char* text) {
  if (text == nullptr || *text == '\0') return 0;
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0') return 0;
  if (value < 1 || value > 1024) return 0;
  return static_cast<int>(value);
}

}  // namespace internal

int DefaultNumThreads() {
  const int from_env = internal::ParseNumThreads(std::getenv("KDASH_NUM_THREADS"));
  if (from_env > 0) return from_env;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<int>(hardware);
}

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads <= 0 ? DefaultNumThreads() : num_threads) {
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  try {
    for (int rank = 1; rank < num_threads_; ++rank) {
      workers_.emplace_back([this, rank] { WorkerLoop(rank); });
    }
  } catch (...) {
    // A spawn failed (e.g. thread-limit hit): release the workers that did
    // start, so destroying a joinable std::thread doesn't std::terminate.
    {
      MutexLock lock(mutex_);
      shutdown_ = true;
      work_cv_.NotifyAll();
    }
    for (std::thread& worker : workers_) worker.join();
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutdown_ = true;
    work_cv_.NotifyAll();
  }
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop(int rank) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      MutexLock lock(mutex_);
      while (!shutdown_ && generation_ == seen) work_cv_.Wait(mutex_);
      if (shutdown_) return;
      seen = generation_;
      job = job_;
    }
    try {
      (*job)(rank);
    } catch (...) {
      MutexLock lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      MutexLock lock(mutex_);
      if (--active_ == 0) done_cv_.NotifyOne();
    }
  }
}

void ThreadPool::RunOnAllThreads(const std::function<void(int)>& fn) {
  if (num_threads_ == 1) {
    fn(0);
    return;
  }
  MutexLock submit(submit_mutex_);
  {
    MutexLock lock(mutex_);
    job_ = &fn;
    active_ = num_threads_ - 1;
    ++generation_;
    work_cv_.NotifyAll();
  }
  std::exception_ptr caller_error;
  try {
    fn(0);
  } catch (...) {
    caller_error = std::current_exception();
  }
  std::exception_ptr worker_error;
  {
    MutexLock lock(mutex_);
    while (active_ != 0) done_cv_.Wait(mutex_);
    job_ = nullptr;
    worker_error = first_error_;
    first_error_ = nullptr;
  }
  if (caller_error) std::rethrow_exception(caller_error);
  if (worker_error) std::rethrow_exception(worker_error);
}

void ThreadPool::ParallelFor(Index begin, Index end, Index grain,
                             const std::function<void(Index, Index, int)>& fn) {
  if (begin >= end) return;
  if (grain <= 0) grain = 1;
  if (num_threads_ == 1 || end - begin <= grain) {
    // Same chunk boundaries as the concurrent path (the documented
    // determinism contract), just executed in order on the caller.
    for (Index b = begin; b < end; b += grain) {
      fn(b, std::min(end, b + grain), 0);
    }
    return;
  }
  std::atomic<Index> cursor{begin};
  RunOnAllThreads([&](int rank) {
    for (;;) {
      const Index chunk_begin = cursor.fetch_add(grain, std::memory_order_relaxed);
      if (chunk_begin >= end) break;
      fn(chunk_begin, std::min(end, chunk_begin + grain), rank);
    }
  });
}

ThreadPool& ThreadPool::Shared() {
  // kdash-lint: allow(naked-new) intentionally leaked so pool workers
  // outlive every static destructor; a unique_ptr would join at exit.
  static ThreadPool* pool = new ThreadPool(0);
  return *pool;
}

void ParallelFor(Index begin, Index end, Index grain,
                 const std::function<void(Index, Index, int)>& fn) {
  ThreadPool::Shared().ParallelFor(begin, end, grain, fn);
}

ThreadPool& SelectPool(int num_threads, std::unique_ptr<ThreadPool>& local) {
  if (num_threads <= 0) return ThreadPool::Shared();
  local = std::make_unique<ThreadPool>(num_threads);
  return *local;
}

}  // namespace kdash
