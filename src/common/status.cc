#include "common/status.h"

namespace kdash {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
  }
  return "UNKNOWN";
}

StatusCode StatusCodeFromName(std::string_view name) {
  // Inverse of StatusCodeName, for protocol layers that receive a code as
  // its canonical wire name. An unrecognized name maps to kInternal — the
  // peer spoke a code this build does not know, which is its bug or a
  // version skew, never the caller's.
  for (const StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kFailedPrecondition, StatusCode::kDataLoss,
        StatusCode::kUnimplemented, StatusCode::kInternal,
        StatusCode::kDeadlineExceeded, StatusCode::kUnavailable,
        StatusCode::kResourceExhausted}) {
    if (name == StatusCodeName(code)) return code;
  }
  return StatusCode::kInternal;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string text = StatusCodeName(code_);
  if (!message_.empty()) {
    text += ": ";
    text += message_;
  }
  return text;
}

}  // namespace kdash
