#include "common/status.h"

namespace kdash {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string text = StatusCodeName(code_);
  if (!message_.empty()) {
    text += ": ";
    text += message_;
  }
  return text;
}

}  // namespace kdash
