#include "graph/graph.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "sparse/coo_builder.h"

namespace kdash::graph {

namespace {

// Builds a CSR-style adjacency (ptr + neighbor array) keyed by `key`,
// merging duplicate (key, other) pairs by summing weights.
void BuildAdjacency(NodeId num_nodes, const std::vector<NodeId>& key,
                    const std::vector<NodeId>& other,
                    const std::vector<Scalar>& weight,
                    std::vector<Index>& ptr, std::vector<Neighbor>& adj) {
  std::vector<std::size_t> order(key.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (key[a] != key[b]) return key[a] < key[b];
    return other[a] < other[b];
  });

  adj.clear();
  adj.reserve(key.size());
  std::vector<NodeId> adj_key;
  adj_key.reserve(key.size());
  for (const std::size_t t : order) {
    if (!adj.empty() && adj_key.back() == key[t] && adj.back().node == other[t]) {
      adj.back().weight += weight[t];
    } else {
      adj_key.push_back(key[t]);
      adj.push_back(Neighbor{other[t], weight[t]});
    }
  }

  ptr.assign(static_cast<std::size_t>(num_nodes) + 1, 0);
  for (const NodeId k : adj_key) ++ptr[static_cast<std::size_t>(k) + 1];
  for (std::size_t i = 1; i < ptr.size(); ++i) ptr[i] += ptr[i - 1];
}

}  // namespace

Graph::Graph(NodeId num_nodes, std::vector<NodeId> src, std::vector<NodeId> dst,
             std::vector<Scalar> weight)
    : num_nodes_(num_nodes) {
  KDASH_CHECK_EQ(src.size(), dst.size());
  KDASH_CHECK_EQ(src.size(), weight.size());
  BuildAdjacency(num_nodes, src, dst, weight, out_ptr_, out_neighbors_);
  BuildAdjacency(num_nodes, dst, src, weight, in_ptr_, in_neighbors_);
  out_weight_.assign(static_cast<std::size_t>(num_nodes), 0.0);
  for (NodeId u = 0; u < num_nodes; ++u) {
    Scalar total = 0.0;
    for (const Neighbor& nb : OutNeighbors(u)) total += nb.weight;
    out_weight_[static_cast<std::size_t>(u)] = total;
  }
}

sparse::CscMatrix Graph::NormalizedAdjacency() const {
  sparse::CooBuilder builder(num_nodes_, num_nodes_);
  builder.Reserve(out_neighbors_.size());
  for (NodeId v = 0; v < num_nodes_; ++v) {
    const Scalar total = OutWeight(v);
    if (total <= 0.0) continue;  // dangling: all-zero column
    for (const Neighbor& nb : OutNeighbors(v)) {
      builder.Add(/*row=*/nb.node, /*col=*/v, nb.weight / total);
    }
  }
  return builder.BuildCsc();
}

bool Graph::IsSymmetric() const {
  for (NodeId u = 0; u < num_nodes_; ++u) {
    for (const Neighbor& nb : OutNeighbors(u)) {
      const auto rev = OutNeighbors(nb.node);
      const auto it = std::lower_bound(
          rev.begin(), rev.end(), u,
          [](const Neighbor& n, NodeId target) { return n.node < target; });
      if (it == rev.end() || it->node != u) return false;
    }
  }
  return true;
}

bool GraphBuilder::HasEdge(NodeId src, NodeId dst) const {
  for (std::size_t i = 0; i < src_.size(); ++i) {
    if (src_[i] == src && dst_[i] == dst) return true;
  }
  return false;
}

Graph GraphBuilder::Build() && {
  return Graph(num_nodes_, std::move(src_), std::move(dst_), std::move(weight_));
}

GraphStats ComputeStats(const Graph& graph) {
  GraphStats stats;
  stats.num_nodes = graph.num_nodes();
  stats.num_edges = graph.num_edges();
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    stats.max_out_degree = std::max(stats.max_out_degree, graph.OutDegree(u));
    stats.max_in_degree = std::max(stats.max_in_degree, graph.InDegree(u));
    if (graph.OutDegree(u) == 0) ++stats.num_dangling;
  }
  stats.avg_degree = graph.num_nodes() > 0
                         ? static_cast<double>(graph.num_edges()) /
                               static_cast<double>(graph.num_nodes())
                         : 0.0;
  return stats;
}

std::string DescribeGraph(const Graph& graph) {
  const GraphStats s = ComputeStats(graph);
  std::ostringstream os;
  os << "n=" << s.num_nodes << " m=" << s.num_edges
     << " avg_out_deg=" << s.avg_degree << " max_out=" << s.max_out_degree
     << " max_in=" << s.max_in_degree << " dangling=" << s.num_dangling;
  return os.str();
}

}  // namespace kdash::graph
