// Structural graph analysis: connectivity, clustering, degree statistics.
//
// Used by the dataset stand-ins (to check they match the paper datasets'
// structural fingerprints), by the benchmark headers, and by library users
// who want to sanity-check inputs before indexing.
#ifndef KDASH_GRAPH_ANALYSIS_H_
#define KDASH_GRAPH_ANALYSIS_H_

#include <vector>

#include "common/types.h"
#include "graph/graph.h"

namespace kdash::graph {

// Strongly connected components (Tarjan, iterative — safe for deep
// graphs). Component ids are dense, in reverse topological order of the
// condensation (a convention Tarjan yields naturally: an SCC's id is
// assigned when it closes, so edges go from higher ids to lower or within).
struct SccResult {
  std::vector<NodeId> component_of_node;
  NodeId num_components = 0;
  NodeId largest_component_size = 0;
};
SccResult StronglyConnectedComponents(const Graph& graph);

// Weakly connected components (union-find over the symmetrized graph).
struct WccResult {
  std::vector<NodeId> component_of_node;
  NodeId num_components = 0;
  NodeId largest_component_size = 0;
};
WccResult WeaklyConnectedComponents(const Graph& graph);

// Global clustering coefficient (transitivity) of the symmetrized simple
// graph: 3 × triangles / open wedges. O(Σ deg²) — intended for the
// laptop-scale graphs of this library.
double GlobalClusteringCoefficient(const Graph& graph);

// Histogram of total degrees: result[d] = number of nodes with degree d.
std::vector<Index> DegreeHistogram(const Graph& graph);

// Least-squares slope of log(count) vs log(degree) over the histogram's
// nonzero buckets with degree ≥ min_degree — a crude power-law exponent
// estimate (expect ≈ -2..-3 for the scale-free families used here).
double DegreeDistributionSlope(const Graph& graph, Index min_degree = 2);

}  // namespace kdash::graph

#endif  // KDASH_GRAPH_ANALYSIS_H_
