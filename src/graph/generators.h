// Random graph generators.
//
// These synthesize the structural families of the paper's five public
// datasets (see datasets/): power-law degree graphs, community-structured
// graphs, small-world graphs, and skewed directed graphs. All generators are
// deterministic given the Rng seed.
#ifndef KDASH_GRAPH_GENERATORS_H_
#define KDASH_GRAPH_GENERATORS_H_

#include "common/random.h"
#include "common/types.h"
#include "graph/graph.h"

namespace kdash::graph {

// G(n, m) Erdős–Rényi: m distinct directed (or undirected) edges chosen
// uniformly at random, no self-loops.
Graph ErdosRenyi(NodeId num_nodes, Index num_edges, bool directed, Rng& rng);

// Barabási–Albert preferential attachment. Each new node attaches
// `edges_per_node` undirected edges to existing nodes with probability
// proportional to their current degree. Produces the power-law degree
// distribution characteristic of the Internet AS graph.
Graph BarabasiAlbert(NodeId num_nodes, NodeId edges_per_node, Rng& rng);

// Holme–Kim power-law cluster model: Barabási–Albert with a triad-formation
// step (probability `triad_prob` of closing a triangle after each
// preferential attachment), yielding power-law degrees *and* high
// clustering — the FOLDOC dictionary's structure. If `directed`, each
// undirected edge is emitted in both directions and additionally a fraction
// of one-way semantic links is produced by dropping one direction at random
// with probability `one_way_prob`.
Graph PowerLawCluster(NodeId num_nodes, NodeId edges_per_node,
                      double triad_prob, bool directed, double one_way_prob,
                      Rng& rng);

// Watts–Strogatz small world: ring lattice with `k` neighbors per side,
// each edge rewired with probability `beta`.
Graph WattsStrogatz(NodeId num_nodes, NodeId k, double beta, Rng& rng);

// Planted partition / stochastic block model with `num_communities` equal
// communities. Expected within-community degree `avg_in_degree` and
// cross-community degree `avg_out_degree` per node. If `weighted`, edge
// weights are Newman-style collaboration weights (1/k accumulated over
// simulated joint papers) instead of 1. Undirected.
Graph PlantedPartition(NodeId num_nodes, NodeId num_communities,
                       double avg_in_degree, double avg_out_degree,
                       bool weighted, Rng& rng);

// Bollobás et al. directed scale-free graph. At each step:
//   with prob alpha: new node v, edge v→w, w chosen ∝ in-degree + delta_in
//   with prob beta : edge v→w between existing nodes (out-pref → in-pref)
//   with prob gamma: new node w, edge v→w, v chosen ∝ out-degree + delta_out
// Grows until `num_nodes` nodes exist. Produces heavy-tailed in- AND
// out-degree sequences with many degree-1 leaves (the Email graph family).
Graph DirectedScaleFree(NodeId num_nodes, double alpha, double beta,
                        double gamma, double delta_in, double delta_out,
                        Rng& rng);

// R-MAT (recursive matrix) generator: 2^scale nodes, `num_edges` directed
// edges dropped by recursive quadrant selection with probabilities
// (a, b, c, d), a + b + c + d = 1. Skewed, self-similar — the Epinions
// social-graph family.
Graph RMat(int scale, Index num_edges, double a, double b, double c, double d,
           Rng& rng);

// Bipartite user–item interaction graph for the recommender example:
// `num_users` + `num_items` nodes; each user rates a Zipf-skewed random set
// of items; edges are undirected (user↔item) with rating weights in [1, 5].
Graph BipartiteRatings(NodeId num_users, NodeId num_items,
                       Index num_ratings, Rng& rng);

}  // namespace kdash::graph

#endif  // KDASH_GRAPH_GENERATORS_H_
