// Edge-list text I/O.
//
// Format: one `src dst [weight]` triple per line; `#` starts a comment.
// Node ids are arbitrary non-negative integers and are densified on load.
// This is the format of the SNAP and Newman datasets the paper uses, so a
// user with the real files can feed them directly to the library.
#ifndef KDASH_GRAPH_IO_H_
#define KDASH_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace kdash::graph {

// Parses an edge list from a stream. If `undirected`, every edge is added in
// both directions. Aborts on malformed lines.
Graph ReadEdgeList(std::istream& in, bool undirected);

// Convenience file overload.
Graph ReadEdgeListFile(const std::string& path, bool undirected);

// Writes `graph` as a directed edge list with weights.
void WriteEdgeList(const Graph& graph, std::ostream& out);

void WriteEdgeListFile(const Graph& graph, const std::string& path);

}  // namespace kdash::graph

#endif  // KDASH_GRAPH_IO_H_
