#include "graph/analysis.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "common/check.h"

namespace kdash::graph {

SccResult StronglyConnectedComponents(const Graph& graph) {
  const NodeId n = graph.num_nodes();
  SccResult result;
  result.component_of_node.assign(static_cast<std::size_t>(n), kInvalidNode);

  // Iterative Tarjan. index/lowlink per node; explicit DFS stack of
  // (node, next-neighbor-offset).
  constexpr NodeId kUnvisited = -1;
  std::vector<NodeId> index(static_cast<std::size_t>(n), kUnvisited);
  std::vector<NodeId> lowlink(static_cast<std::size_t>(n), 0);
  std::vector<bool> on_stack(static_cast<std::size_t>(n), false);
  std::vector<NodeId> scc_stack;
  std::vector<std::pair<NodeId, std::size_t>> dfs;
  NodeId next_index = 0;

  for (NodeId root = 0; root < n; ++root) {
    if (index[static_cast<std::size_t>(root)] != kUnvisited) continue;
    dfs.emplace_back(root, 0);
    while (!dfs.empty()) {
      auto& [u, offset] = dfs.back();
      if (offset == 0) {
        index[static_cast<std::size_t>(u)] = next_index;
        lowlink[static_cast<std::size_t>(u)] = next_index;
        ++next_index;
        scc_stack.push_back(u);
        on_stack[static_cast<std::size_t>(u)] = true;
      }
      const auto neighbors = graph.OutNeighbors(u);
      bool descended = false;
      while (offset < neighbors.size()) {
        const NodeId v = neighbors[offset].node;
        ++offset;
        if (index[static_cast<std::size_t>(v)] == kUnvisited) {
          dfs.emplace_back(v, 0);
          descended = true;
          break;
        }
        if (on_stack[static_cast<std::size_t>(v)]) {
          lowlink[static_cast<std::size_t>(u)] =
              std::min(lowlink[static_cast<std::size_t>(u)],
                       index[static_cast<std::size_t>(v)]);
        }
      }
      if (descended) continue;

      // u is finished: close its SCC if it is a root, then propagate the
      // lowlink to the parent.
      const NodeId u_done = u;
      if (lowlink[static_cast<std::size_t>(u_done)] ==
          index[static_cast<std::size_t>(u_done)]) {
        NodeId popped;
        NodeId size = 0;
        do {
          popped = scc_stack.back();
          scc_stack.pop_back();
          on_stack[static_cast<std::size_t>(popped)] = false;
          result.component_of_node[static_cast<std::size_t>(popped)] =
              result.num_components;
          ++size;
        } while (popped != u_done);
        result.largest_component_size =
            std::max(result.largest_component_size, size);
        ++result.num_components;
      }
      dfs.pop_back();
      if (!dfs.empty()) {
        const NodeId parent = dfs.back().first;
        lowlink[static_cast<std::size_t>(parent)] =
            std::min(lowlink[static_cast<std::size_t>(parent)],
                     lowlink[static_cast<std::size_t>(u_done)]);
      }
    }
  }
  return result;
}

WccResult WeaklyConnectedComponents(const Graph& graph) {
  const NodeId n = graph.num_nodes();
  std::vector<NodeId> parent(static_cast<std::size_t>(n));
  std::iota(parent.begin(), parent.end(), 0);
  // Union-find with path halving.
  auto find = [&](NodeId x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };
  for (NodeId u = 0; u < n; ++u) {
    for (const Neighbor& nb : graph.OutNeighbors(u)) {
      const NodeId a = find(u);
      const NodeId b = find(nb.node);
      if (a != b) parent[static_cast<std::size_t>(a)] = b;
    }
  }

  WccResult result;
  result.component_of_node.assign(static_cast<std::size_t>(n), kInvalidNode);
  std::vector<NodeId> dense_id(static_cast<std::size_t>(n), kInvalidNode);
  std::vector<NodeId> size;
  for (NodeId u = 0; u < n; ++u) {
    const NodeId root = find(u);
    NodeId& id = dense_id[static_cast<std::size_t>(root)];
    if (id == kInvalidNode) {
      id = result.num_components++;
      size.push_back(0);
    }
    result.component_of_node[static_cast<std::size_t>(u)] = id;
    ++size[static_cast<std::size_t>(id)];
  }
  for (const NodeId s : size) {
    result.largest_component_size = std::max(result.largest_component_size, s);
  }
  return result;
}

double GlobalClusteringCoefficient(const Graph& graph) {
  const NodeId n = graph.num_nodes();
  // Symmetrized simple adjacency sets.
  std::vector<std::vector<NodeId>> adj(static_cast<std::size_t>(n));
  for (NodeId u = 0; u < n; ++u) {
    for (const Neighbor& nb : graph.OutNeighbors(u)) {
      if (nb.node == u) continue;
      adj[static_cast<std::size_t>(u)].push_back(nb.node);
      adj[static_cast<std::size_t>(nb.node)].push_back(u);
    }
  }
  for (auto& list : adj) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }

  // Count closed paths of length 2 and all paths of length 2.
  long long closed = 0;
  long long wedges = 0;
  for (NodeId u = 0; u < n; ++u) {
    const auto& nu = adj[static_cast<std::size_t>(u)];
    const long long d = static_cast<long long>(nu.size());
    wedges += d * (d - 1) / 2;
    for (std::size_t i = 0; i < nu.size(); ++i) {
      for (std::size_t j = i + 1; j < nu.size(); ++j) {
        const auto& nv = adj[static_cast<std::size_t>(nu[i])];
        if (std::binary_search(nv.begin(), nv.end(), nu[j])) ++closed;
      }
    }
  }
  if (wedges == 0) return 0.0;
  return static_cast<double>(closed) / static_cast<double>(wedges);
}

std::vector<Index> DegreeHistogram(const Graph& graph) {
  Index max_degree = 0;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    max_degree = std::max(max_degree, graph.Degree(u));
  }
  std::vector<Index> histogram(static_cast<std::size_t>(max_degree) + 1, 0);
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    ++histogram[static_cast<std::size_t>(graph.Degree(u))];
  }
  return histogram;
}

double DegreeDistributionSlope(const Graph& graph, Index min_degree) {
  const auto histogram = DegreeHistogram(graph);
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  int count = 0;
  for (std::size_t d = static_cast<std::size_t>(min_degree);
       d < histogram.size(); ++d) {
    if (histogram[d] == 0) continue;
    const double x = std::log(static_cast<double>(d));
    const double y = std::log(static_cast<double>(histogram[d]));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++count;
  }
  if (count < 2) return 0.0;
  const double denom = count * sxx - sx * sx;
  if (denom == 0.0) return 0.0;
  return (count * sxy - sx * sy) / denom;
}

}  // namespace kdash::graph
