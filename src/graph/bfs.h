// Breadth-first search over out-edges.
//
// K-dash's estimator (Section 4.3) visits nodes in ascending BFS-layer order
// from the query node; the layer array here is exactly the `l(u)` of the
// paper. Unreached nodes keep layer kUnreachedLayer and proximity 0.
#ifndef KDASH_GRAPH_BFS_H_
#define KDASH_GRAPH_BFS_H_

#include <vector>

#include "common/types.h"
#include "graph/graph.h"

namespace kdash::graph {

inline constexpr NodeId kUnreachedLayer = -1;

struct BfsTree {
  NodeId root = kInvalidNode;
  // Visit order: root first, then layer by layer. Contains only reached
  // nodes. Within a layer, nodes appear in FIFO discovery order.
  std::vector<NodeId> order;
  // layer[u] = hop distance from root following out-edges, or
  // kUnreachedLayer if u is unreachable.
  std::vector<NodeId> layer;
  NodeId num_layers = 0;  // 1 + max layer over reached nodes
};

// Runs BFS from `root` following out-edges (the direction the random walk
// travels). O(n + m).
BfsTree BreadthFirstTree(const Graph& graph, NodeId root);

}  // namespace kdash::graph

#endif  // KDASH_GRAPH_BFS_H_
