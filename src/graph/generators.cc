#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/check.h"

namespace kdash::graph {

namespace {

// Packs a directed edge into one 64-bit key for duplicate detection.
std::uint64_t EdgeKey(NodeId u, NodeId v) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 32) |
         static_cast<std::uint32_t>(v);
}

}  // namespace

Graph ErdosRenyi(NodeId num_nodes, Index num_edges, bool directed, Rng& rng) {
  KDASH_CHECK(num_nodes >= 2);
  GraphBuilder builder(num_nodes);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(num_edges) * 2);
  Index added = 0;
  while (added < num_edges) {
    const NodeId u = rng.NextNode(num_nodes);
    const NodeId v = rng.NextNode(num_nodes);
    if (u == v) continue;
    const std::uint64_t key =
        directed ? EdgeKey(u, v) : EdgeKey(std::min(u, v), std::max(u, v));
    if (!seen.insert(key).second) continue;
    if (directed) {
      builder.AddEdge(u, v);
    } else {
      builder.AddUndirectedEdge(u, v);
    }
    ++added;
  }
  return std::move(builder).Build();
}

Graph BarabasiAlbert(NodeId num_nodes, NodeId edges_per_node, Rng& rng) {
  KDASH_CHECK(num_nodes > edges_per_node);
  KDASH_CHECK(edges_per_node >= 1);
  GraphBuilder builder(num_nodes);
  // `targets` holds one entry per edge endpoint, so sampling uniformly from
  // it is degree-proportional sampling.
  std::vector<NodeId> endpoints;
  endpoints.reserve(static_cast<std::size_t>(num_nodes) *
                    static_cast<std::size_t>(edges_per_node) * 2);

  // Seed clique over the first edges_per_node + 1 nodes.
  const NodeId seed_size = edges_per_node + 1;
  for (NodeId u = 0; u < seed_size; ++u) {
    for (NodeId v = static_cast<NodeId>(u + 1); v < seed_size; ++v) {
      builder.AddUndirectedEdge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }

  std::unordered_set<NodeId> picked;
  for (NodeId u = seed_size; u < num_nodes; ++u) {
    picked.clear();
    while (static_cast<NodeId>(picked.size()) < edges_per_node) {
      const NodeId target =
          endpoints[rng.NextBounded(endpoints.size())];
      picked.insert(target);
    }
    for (const NodeId target : picked) {
      builder.AddUndirectedEdge(u, target);
      endpoints.push_back(u);
      endpoints.push_back(target);
    }
  }
  return std::move(builder).Build();
}

Graph PowerLawCluster(NodeId num_nodes, NodeId edges_per_node,
                      double triad_prob, bool directed, double one_way_prob,
                      Rng& rng) {
  KDASH_CHECK(num_nodes > edges_per_node);
  KDASH_CHECK(edges_per_node >= 1);
  KDASH_CHECK(triad_prob >= 0.0 && triad_prob <= 1.0);

  // First build the undirected Holme–Kim edge set.
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::vector<std::vector<NodeId>> adjacency(static_cast<std::size_t>(num_nodes));
  std::vector<NodeId> endpoints;
  std::unordered_set<std::uint64_t> seen;
  auto add_edge = [&](NodeId u, NodeId v) {
    if (u == v) return false;
    const std::uint64_t key = EdgeKey(std::min(u, v), std::max(u, v));
    if (!seen.insert(key).second) return false;
    edges.emplace_back(u, v);
    adjacency[static_cast<std::size_t>(u)].push_back(v);
    adjacency[static_cast<std::size_t>(v)].push_back(u);
    endpoints.push_back(u);
    endpoints.push_back(v);
    return true;
  };

  const NodeId seed_size = edges_per_node + 1;
  for (NodeId u = 0; u < seed_size; ++u) {
    for (NodeId v = static_cast<NodeId>(u + 1); v < seed_size; ++v) add_edge(u, v);
  }

  for (NodeId u = seed_size; u < num_nodes; ++u) {
    NodeId last_target = kInvalidNode;
    NodeId made = 0;
    int attempts = 0;
    while (made < edges_per_node && attempts < 50 * edges_per_node) {
      ++attempts;
      NodeId target;
      if (last_target != kInvalidNode && rng.NextDouble() < triad_prob &&
          !adjacency[static_cast<std::size_t>(last_target)].empty()) {
        // Triad step: attach to a random neighbor of the previous target.
        const auto& nbrs = adjacency[static_cast<std::size_t>(last_target)];
        target = nbrs[rng.NextBounded(nbrs.size())];
      } else {
        target = endpoints[rng.NextBounded(endpoints.size())];
      }
      if (add_edge(u, target)) {
        last_target = target;
        ++made;
      }
    }
  }

  GraphBuilder builder(num_nodes);
  for (const auto& [u, v] : edges) {
    if (directed) {
      // Keep both directions by default; with probability one_way_prob keep
      // only a random one (dictionary-style asymmetric "describes" links).
      if (rng.NextDouble() < one_way_prob) {
        if (rng.NextDouble() < 0.5) {
          builder.AddEdge(u, v);
        } else {
          builder.AddEdge(v, u);
        }
      } else {
        builder.AddEdge(u, v);
        builder.AddEdge(v, u);
      }
    } else {
      builder.AddUndirectedEdge(u, v);
    }
  }
  return std::move(builder).Build();
}

Graph WattsStrogatz(NodeId num_nodes, NodeId k, double beta, Rng& rng) {
  KDASH_CHECK(k >= 1 && num_nodes > 2 * k);
  std::unordered_set<std::uint64_t> seen;
  std::vector<std::pair<NodeId, NodeId>> edges;
  auto key_of = [](NodeId a, NodeId b) {
    return EdgeKey(std::min(a, b), std::max(a, b));
  };
  for (NodeId u = 0; u < num_nodes; ++u) {
    for (NodeId j = 1; j <= k; ++j) {
      const NodeId v = static_cast<NodeId>((u + j) % num_nodes);
      if (rng.NextDouble() < beta) {
        // Rewire: keep u, choose a random new endpoint.
        for (int attempt = 0; attempt < 100; ++attempt) {
          const NodeId w = rng.NextNode(num_nodes);
          if (w == u) continue;
          if (seen.insert(key_of(u, w)).second) {
            edges.emplace_back(u, w);
            break;
          }
        }
      } else if (seen.insert(key_of(u, v)).second) {
        edges.emplace_back(u, v);
      }
    }
  }
  GraphBuilder builder(num_nodes);
  for (const auto& [u, v] : edges) builder.AddUndirectedEdge(u, v);
  return std::move(builder).Build();
}

Graph PlantedPartition(NodeId num_nodes, NodeId num_communities,
                       double avg_in_degree, double avg_out_degree,
                       bool weighted, Rng& rng) {
  KDASH_CHECK(num_communities >= 1 && num_nodes >= 2 * num_communities);
  const NodeId community_size = num_nodes / num_communities;
  auto community_of = [&](NodeId u) {
    return std::min<NodeId>(u / community_size, num_communities - 1);
  };
  auto community_begin = [&](NodeId community) {
    return static_cast<NodeId>(community * community_size);
  };
  auto community_end = [&](NodeId community) {
    return community == num_communities - 1
               ? num_nodes
               : static_cast<NodeId>((community + 1) * community_size);
  };

  const Index within_edges =
      static_cast<Index>(static_cast<double>(num_nodes) * avg_in_degree / 2.0);
  const Index cross_edges =
      static_cast<Index>(static_cast<double>(num_nodes) * avg_out_degree / 2.0);

  std::unordered_set<std::uint64_t> seen;
  GraphBuilder builder(num_nodes);
  auto try_add = [&](NodeId u, NodeId v, Scalar w) {
    if (u == v) return false;
    if (!seen.insert(EdgeKey(std::min(u, v), std::max(u, v))).second) return false;
    builder.AddUndirectedEdge(u, v, w);
    return true;
  };

  // Collaboration-style weights: simulate "papers" with 1/(k-1) credit per
  // co-author pair, à la Newman's cond-mat weighting.
  auto next_weight = [&]() -> Scalar {
    if (!weighted) return 1.0;
    const int coauthors = 2 + static_cast<int>(rng.NextBounded(4));  // 2..5
    return 1.0 / static_cast<Scalar>(coauthors - 1);
  };

  Index added = 0;
  while (added < within_edges) {
    const NodeId community = static_cast<NodeId>(rng.NextBounded(
        static_cast<std::uint64_t>(num_communities)));
    const NodeId lo = community_begin(community);
    const NodeId hi = community_end(community);
    const NodeId u = static_cast<NodeId>(lo + rng.NextBounded(
                                                  static_cast<std::uint64_t>(hi - lo)));
    const NodeId v = static_cast<NodeId>(lo + rng.NextBounded(
                                                  static_cast<std::uint64_t>(hi - lo)));
    if (try_add(u, v, next_weight())) ++added;
  }
  added = 0;
  while (added < cross_edges) {
    const NodeId u = rng.NextNode(num_nodes);
    const NodeId v = rng.NextNode(num_nodes);
    if (community_of(u) == community_of(v)) continue;
    if (try_add(u, v, next_weight())) ++added;
  }
  return std::move(builder).Build();
}

Graph DirectedScaleFree(NodeId num_nodes, double alpha, double beta,
                        double gamma, double delta_in, double delta_out,
                        Rng& rng) {
  KDASH_CHECK(std::abs(alpha + beta + gamma - 1.0) < 1e-9)
      << "alpha + beta + gamma must be 1";
  KDASH_CHECK(num_nodes >= 3);

  std::vector<std::pair<NodeId, NodeId>> edges;
  std::vector<Index> in_degree, out_degree;
  NodeId n = 0;
  auto new_node = [&]() {
    in_degree.push_back(0);
    out_degree.push_back(0);
    return n++;
  };
  auto add_edge = [&](NodeId u, NodeId v) {
    edges.emplace_back(u, v);
    ++out_degree[static_cast<std::size_t>(u)];
    ++in_degree[static_cast<std::size_t>(v)];
  };

  // Sampling ∝ degree + delta via rejection over "degree mass + delta mass".
  auto sample_by_in = [&]() -> NodeId {
    const double total = static_cast<double>(edges.size()) +
                         delta_in * static_cast<double>(n);
    double r = rng.NextDouble() * total;
    if (r < delta_in * static_cast<double>(n)) {
      return rng.NextNode(n);
    }
    // Pick the head endpoint of a uniform random edge (∝ in-degree).
    return edges[rng.NextBounded(edges.size())].second;
  };
  auto sample_by_out = [&]() -> NodeId {
    const double total = static_cast<double>(edges.size()) +
                         delta_out * static_cast<double>(n);
    double r = rng.NextDouble() * total;
    if (r < delta_out * static_cast<double>(n)) {
      return rng.NextNode(n);
    }
    return edges[rng.NextBounded(edges.size())].first;
  };

  // Seed triangle.
  const NodeId a = new_node(), b = new_node(), c = new_node();
  add_edge(a, b);
  add_edge(b, c);
  add_edge(c, a);

  while (n < num_nodes) {
    const double r = rng.NextDouble();
    if (r < alpha) {
      const NodeId w = sample_by_in();
      const NodeId v = new_node();
      add_edge(v, w);
    } else if (r < alpha + beta) {
      const NodeId v = sample_by_out();
      const NodeId w = sample_by_in();
      if (v != w) add_edge(v, w);
    } else {
      const NodeId v = sample_by_out();
      const NodeId w = new_node();
      add_edge(v, w);
    }
  }

  GraphBuilder builder(num_nodes);
  for (const auto& [u, v] : edges) builder.AddEdge(u, v);
  return std::move(builder).Build();
}

Graph RMat(int scale, Index num_edges, double a, double b, double c, double d,
           Rng& rng) {
  KDASH_CHECK(scale >= 1 && scale < 31);
  KDASH_CHECK(std::abs(a + b + c + d - 1.0) < 1e-9);
  const NodeId num_nodes = static_cast<NodeId>(1) << scale;
  GraphBuilder builder(num_nodes);
  std::unordered_set<std::uint64_t> seen;
  Index added = 0;
  Index attempts = 0;
  const Index max_attempts = num_edges * 20;
  while (added < num_edges && attempts < max_attempts) {
    ++attempts;
    NodeId row = 0, col = 0;
    for (int level = 0; level < scale; ++level) {
      const double r = rng.NextDouble();
      row <<= 1;
      col <<= 1;
      if (r < a) {
        // top-left quadrant
      } else if (r < a + b) {
        col |= 1;
      } else if (r < a + b + c) {
        row |= 1;
      } else {
        row |= 1;
        col |= 1;
      }
    }
    if (row == col) continue;
    if (!seen.insert(EdgeKey(row, col)).second) continue;
    builder.AddEdge(row, col);
    ++added;
  }
  return std::move(builder).Build();
}

Graph BipartiteRatings(NodeId num_users, NodeId num_items, Index num_ratings,
                       Rng& rng) {
  KDASH_CHECK(num_users >= 1 && num_items >= 1);
  const NodeId n = static_cast<NodeId>(num_users + num_items);
  GraphBuilder builder(n);
  std::unordered_set<std::uint64_t> seen;
  Index added = 0;
  while (added < num_ratings) {
    const NodeId user = rng.NextNode(num_users);
    // Zipf-skewed item popularity: item index ∝ u^2 biases toward low ids.
    const double u01 = rng.NextDouble();
    const NodeId item = static_cast<NodeId>(
        num_users +
        std::min<NodeId>(static_cast<NodeId>(u01 * u01 * num_items),
                         static_cast<NodeId>(num_items - 1)));
    if (!seen.insert(EdgeKey(user, item)).second) continue;
    const Scalar rating = static_cast<Scalar>(1 + rng.NextBounded(5));
    builder.AddUndirectedEdge(user, item, rating);
    ++added;
  }
  return std::move(builder).Build();
}

}  // namespace kdash::graph
