// Directed weighted graph container.
//
// The random walk in RWR follows *out*-edges, so the primary adjacency is
// out-neighbor CSR; in-neighbor CSR is materialized alongside because
// generators, statistics, and the baselines need it. Node ids are dense
// [0, n). Parallel edges are merged (weights summed) at build time;
// self-loops are allowed (the paper's estimator handles A(u,u) ≠ 0
// explicitly through the c′(u) factor).
#ifndef KDASH_GRAPH_GRAPH_H_
#define KDASH_GRAPH_GRAPH_H_

#include <span>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "sparse/csc_matrix.h"

namespace kdash::graph {

// One directed edge endpoint with weight, as seen from an adjacency list.
struct Neighbor {
  NodeId node = kInvalidNode;
  Scalar weight = 1.0;

  friend bool operator==(const Neighbor&, const Neighbor&) = default;
};

class Graph {
 public:
  Graph() = default;

  // Assembles a graph from an edge list. Duplicate (src, dst) edges have
  // their weights summed. All weights must be positive.
  Graph(NodeId num_nodes, std::vector<NodeId> src, std::vector<NodeId> dst,
        std::vector<Scalar> weight);

  NodeId num_nodes() const { return num_nodes_; }
  // Number of distinct directed edges after merging duplicates.
  Index num_edges() const { return static_cast<Index>(out_neighbors_.size()); }

  std::span<const Neighbor> OutNeighbors(NodeId u) const {
    return {out_neighbors_.data() + out_ptr_[static_cast<std::size_t>(u)],
            out_neighbors_.data() + out_ptr_[static_cast<std::size_t>(u) + 1]};
  }

  std::span<const Neighbor> InNeighbors(NodeId u) const {
    return {in_neighbors_.data() + in_ptr_[static_cast<std::size_t>(u)],
            in_neighbors_.data() + in_ptr_[static_cast<std::size_t>(u) + 1]};
  }

  Index OutDegree(NodeId u) const {
    return out_ptr_[static_cast<std::size_t>(u) + 1] - out_ptr_[static_cast<std::size_t>(u)];
  }
  Index InDegree(NodeId u) const {
    return in_ptr_[static_cast<std::size_t>(u) + 1] - in_ptr_[static_cast<std::size_t>(u)];
  }
  // Total degree (in + out); the ordering heuristics sort by this.
  Index Degree(NodeId u) const { return OutDegree(u) + InDegree(u); }

  // Sum of out-edge weights of u (0 for dangling nodes).
  Scalar OutWeight(NodeId u) const { return out_weight_[static_cast<std::size_t>(u)]; }

  // The column-normalized adjacency matrix A of the paper: A(u, v) is the
  // probability of stepping to u from v, i.e., w(v→u) / Σ_x w(v→x).
  // Columns of dangling nodes are all-zero (sub-stochastic), a convention
  // shared by every engine in this library.
  sparse::CscMatrix NormalizedAdjacency() const;

  // True if for every edge u→v the edge v→u also exists.
  bool IsSymmetric() const;

 private:
  NodeId num_nodes_ = 0;
  std::vector<Index> out_ptr_;
  std::vector<Neighbor> out_neighbors_;  // sorted by node within each list
  std::vector<Index> in_ptr_;
  std::vector<Neighbor> in_neighbors_;
  std::vector<Scalar> out_weight_;
};

// Incremental edge accumulator. AddEdge / AddUndirectedEdge, then Build().
class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId num_nodes) : num_nodes_(num_nodes) {
    KDASH_CHECK(num_nodes >= 0);
  }

  void AddEdge(NodeId src, NodeId dst, Scalar weight = 1.0) {
    KDASH_CHECK(src >= 0 && src < num_nodes_) << "src " << src;
    KDASH_CHECK(dst >= 0 && dst < num_nodes_) << "dst " << dst;
    KDASH_CHECK(weight > 0.0) << "non-positive weight";
    src_.push_back(src);
    dst_.push_back(dst);
    weight_.push_back(weight);
  }

  // Adds both directions. Self-loops are added once.
  void AddUndirectedEdge(NodeId a, NodeId b, Scalar weight = 1.0) {
    AddEdge(a, b, weight);
    if (a != b) AddEdge(b, a, weight);
  }

  // True if the directed edge was recorded by an earlier AddEdge call.
  // O(#edges added from src); intended for generators avoiding duplicates.
  bool HasEdge(NodeId src, NodeId dst) const;

  NodeId num_nodes() const { return num_nodes_; }
  std::size_t num_added() const { return src_.size(); }

  Graph Build() &&;

 private:
  NodeId num_nodes_;
  std::vector<NodeId> src_;
  std::vector<NodeId> dst_;
  std::vector<Scalar> weight_;
};

// Basic structural statistics, used by dataset tests and the bench headers.
struct GraphStats {
  NodeId num_nodes = 0;
  Index num_edges = 0;
  Index max_out_degree = 0;
  Index max_in_degree = 0;
  double avg_degree = 0.0;
  NodeId num_dangling = 0;  // nodes with no out-edges
};

GraphStats ComputeStats(const Graph& graph);

// Human-readable one-line summary.
std::string DescribeGraph(const Graph& graph);

}  // namespace kdash::graph

#endif  // KDASH_GRAPH_GRAPH_H_
