#include "graph/io.h"

#include <fstream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/check.h"

namespace kdash::graph {

Graph ReadEdgeList(std::istream& in, bool undirected) {
  std::unordered_map<long long, NodeId> dense_id;
  std::vector<NodeId> src, dst;
  std::vector<Scalar> weight;
  auto densify = [&](long long raw) {
    const auto [it, inserted] =
        dense_id.try_emplace(raw, static_cast<NodeId>(dense_id.size()));
    return it->second;
  };

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    long long raw_src = 0, raw_dst = 0;
    if (!(fields >> raw_src)) continue;  // blank/comment line
    KDASH_CHECK(static_cast<bool>(fields >> raw_dst))
        << "malformed edge at line " << line_no;
    double w = 1.0;
    fields >> w;
    KDASH_CHECK(w > 0.0) << "non-positive weight at line " << line_no;
    const NodeId u = densify(raw_src);
    const NodeId v = densify(raw_dst);
    src.push_back(u);
    dst.push_back(v);
    weight.push_back(w);
    if (undirected && u != v) {
      src.push_back(v);
      dst.push_back(u);
      weight.push_back(w);
    }
  }
  return Graph(static_cast<NodeId>(dense_id.size()), std::move(src),
               std::move(dst), std::move(weight));
}

Graph ReadEdgeListFile(const std::string& path, bool undirected) {
  std::ifstream in(path);
  KDASH_CHECK(in.good()) << "cannot open " << path;
  return ReadEdgeList(in, undirected);
}

void WriteEdgeList(const Graph& graph, std::ostream& out) {
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (const Neighbor& nb : graph.OutNeighbors(u)) {
      out << u << ' ' << nb.node << ' ' << nb.weight << '\n';
    }
  }
}

void WriteEdgeListFile(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  KDASH_CHECK(out.good()) << "cannot open " << path;
  WriteEdgeList(graph, out);
  KDASH_CHECK(out.good()) << "write failed for " << path;
}

}  // namespace kdash::graph
