#include "graph/bfs.h"

#include "common/check.h"

namespace kdash::graph {

BfsTree BreadthFirstTree(const Graph& graph, NodeId root) {
  KDASH_CHECK(root >= 0 && root < graph.num_nodes());
  BfsTree tree;
  tree.root = root;
  tree.layer.assign(static_cast<std::size_t>(graph.num_nodes()), kUnreachedLayer);
  tree.order.reserve(static_cast<std::size_t>(graph.num_nodes()));

  tree.layer[static_cast<std::size_t>(root)] = 0;
  tree.order.push_back(root);
  // tree.order doubles as the FIFO queue: head scans it left to right.
  std::size_t head = 0;
  while (head < tree.order.size()) {
    const NodeId u = tree.order[head++];
    const NodeId next_layer =
        static_cast<NodeId>(tree.layer[static_cast<std::size_t>(u)] + 1);
    for (const Neighbor& nb : graph.OutNeighbors(u)) {
      if (tree.layer[static_cast<std::size_t>(nb.node)] == kUnreachedLayer) {
        tree.layer[static_cast<std::size_t>(nb.node)] = next_layer;
        tree.order.push_back(nb.node);
      }
    }
  }
  tree.num_layers =
      tree.order.empty()
          ? 0
          : static_cast<NodeId>(tree.layer[static_cast<std::size_t>(tree.order.back())] + 1);
  return tree;
}

}  // namespace kdash::graph
