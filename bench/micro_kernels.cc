// Micro-benchmarks (google-benchmark) for the kernels on K-dash's hot
// paths: SpMV, the O(1) estimate update, sparse triangular solves, BFS,
// LU factorization, and a full K-dash query.
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "core/estimator.h"
#include "core/kdash_index.h"
#include "core/kdash_searcher.h"
#include "graph/bfs.h"
#include "graph/generators.h"
#include "lu/sparse_lu.h"
#include "lu/triangular.h"
#include "sparse/permute.h"
#include "rwr/power_iteration.h"

namespace kdash {
namespace {

graph::Graph BenchGraph(NodeId n) {
  Rng rng(42);
  return graph::PowerLawCluster(n, 5, 0.6, /*directed=*/true, 0.4, rng);
}

void BM_SpMV(benchmark::State& state) {
  const auto g = BenchGraph(static_cast<NodeId>(state.range(0)));
  const auto a = g.NormalizedAdjacency();
  std::vector<Scalar> x(static_cast<std::size_t>(a.cols()), 1.0 / a.cols());
  std::vector<Scalar> y(x.size());
  for (auto _ : state) {
    a.MultiplyVector(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_SpMV)->Arg(1000)->Arg(4000);

void BM_EstimateUpdate(benchmark::State& state) {
  // The Definition-2 O(1) update, isolated.
  const NodeId n = 1 << 16;
  std::vector<Scalar> amax_of_node(static_cast<std::size_t>(n), 0.25);
  std::vector<Scalar> c_prime(static_cast<std::size_t>(n), 0.05);
  core::ProximityEstimator estimator(0.5, &amax_of_node, &c_prime);
  estimator.Reset();
  estimator.RecordQuery(0, 0.95);
  NodeId u = 1;
  NodeId layer = 1;
  Scalar acc = 0.0;
  for (auto _ : state) {
    acc += estimator.EstimateNext(u, layer);
    estimator.RecordSelected(u, 1e-6);
    if (++u == n) {  // restart the protocol
      estimator.Reset();
      estimator.RecordQuery(0, 0.95);
      u = 1;
      layer = 0;
    }
    if ((u & 1023) == 0) ++layer;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_EstimateUpdate);

void BM_Bfs(benchmark::State& state) {
  const auto g = BenchGraph(static_cast<NodeId>(state.range(0)));
  for (auto _ : state) {
    const auto tree = graph::BreadthFirstTree(g, 0);
    benchmark::DoNotOptimize(tree.order.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          (g.num_nodes() + g.num_edges()));
}
BENCHMARK(BM_Bfs)->Arg(1000)->Arg(4000);

void BM_LuFactorize(benchmark::State& state) {
  const auto g = BenchGraph(static_cast<NodeId>(state.range(0)));
  const auto index_order =
      reorder::ComputeReordering(g, reorder::Method::kHybrid);
  const auto a =
      sparse::PermuteSymmetric(g.NormalizedAdjacency(), index_order.new_of_old);
  const auto w = lu::BuildRwrSystemMatrix(a, 0.95);
  for (auto _ : state) {
    auto factors = lu::FactorizeLu(w);
    benchmark::DoNotOptimize(factors.lower.nnz());
  }
}
BENCHMARK(BM_LuFactorize)->Arg(1000)->Arg(4000);

void BM_TriangularSolve(benchmark::State& state) {
  const auto g = BenchGraph(static_cast<NodeId>(state.range(0)));
  const auto w = lu::BuildRwrSystemMatrix(g.NormalizedAdjacency(), 0.95);
  const auto factors = lu::FactorizeLu(w);
  std::vector<Scalar> b(static_cast<std::size_t>(g.num_nodes()), 0.0);
  for (auto _ : state) {
    std::fill(b.begin(), b.end(), 0.0);
    b[0] = 0.95;
    lu::SolveLowerInPlace(factors.lower, b);
    lu::SolveUpperInPlace(factors.upper, b);
    benchmark::DoNotOptimize(b.data());
  }
}
BENCHMARK(BM_TriangularSolve)->Arg(1000)->Arg(4000);

void BM_TriangularInvert(benchmark::State& state) {
  // The parallelized precompute stage, isolated. Arg is the thread count.
  const auto g = BenchGraph(2000);
  const auto index_order =
      reorder::ComputeReordering(g, reorder::Method::kHybrid);
  const auto a =
      sparse::PermuteSymmetric(g.NormalizedAdjacency(), index_order.new_of_old);
  const auto factors = lu::FactorizeLu(lu::BuildRwrSystemMatrix(a, 0.95));
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto inv = lu::InvertLowerTriangular(factors.lower, 0.0, threads);
    benchmark::DoNotOptimize(inv.nnz());
  }
}
BENCHMARK(BM_TriangularInvert)->Arg(1)->Arg(2)->Arg(4);

void BM_ProximityRowDot(benchmark::State& state) {
  // The dense-gather side of the adaptive proximity kernel: U⁻¹ row · y
  // with y scattered dense. Arg is the graph size.
  const auto g = BenchGraph(static_cast<NodeId>(state.range(0)));
  const auto index = core::KDashIndex::Build(g, {});
  const auto& uinv = index.upper_inverse();
  std::vector<Scalar> y(static_cast<std::size_t>(index.num_nodes()), 0.01);
  Rng rng(3);
  Scalar acc = 0.0;
  for (auto _ : state) {
    acc += uinv.RowDot(rng.NextNode(index.num_nodes()), y);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_ProximityRowDot)->Arg(1000)->Arg(4000);

void BM_ProximityRowDotSparse(benchmark::State& state) {
  // The sparse-intersection side: same rows, y restricted to a small
  // support (every 64th node), the shape a short L⁻¹ column produces.
  const auto g = BenchGraph(static_cast<NodeId>(state.range(0)));
  const auto index = core::KDashIndex::Build(g, {});
  const auto& uinv = index.upper_inverse();
  std::vector<Scalar> y(static_cast<std::size_t>(index.num_nodes()), 0.0);
  std::vector<NodeId> support;
  for (NodeId i = 0; i < index.num_nodes(); i += 64) {
    support.push_back(i);
    y[static_cast<std::size_t>(i)] = 0.01;
  }
  Rng rng(3);
  Scalar acc = 0.0;
  for (auto _ : state) {
    acc += uinv.RowDotSparse(rng.NextNode(index.num_nodes()), y, support);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_ProximityRowDotSparse)->Arg(1000)->Arg(4000);

void BM_KDashQuery(benchmark::State& state) {
  const auto g = BenchGraph(static_cast<NodeId>(state.range(0)));
  const auto index = core::KDashIndex::Build(g, {});
  core::KDashSearcher searcher(&index);
  Rng rng(7);
  for (auto _ : state) {
    const auto top = searcher.TopK(rng.NextNode(g.num_nodes()), 5);
    benchmark::DoNotOptimize(top.data());
  }
}
BENCHMARK(BM_KDashQuery)->Arg(1000)->Arg(4000);

void BM_PowerIterationQuery(benchmark::State& state) {
  const auto g = BenchGraph(static_cast<NodeId>(state.range(0)));
  const auto a = g.NormalizedAdjacency();
  Rng rng(7);
  for (auto _ : state) {
    const auto top =
        rwr::TopKByPowerIteration(a, rng.NextNode(g.num_nodes()), 5, {});
    benchmark::DoNotOptimize(top.data());
  }
}
BENCHMARK(BM_PowerIterationQuery)->Arg(1000)->Arg(4000);

}  // namespace
}  // namespace kdash

BENCHMARK_MAIN();
