// Figure 6: precomputation wall-clock time (reorder + LU + explicit
// inverses) per reordering approach on each dataset.
#include <cstdio>

#include "bench_util.h"
#include "core/kdash_index.h"

namespace kdash {
namespace {

constexpr double kScaleMultiplier = 0.4;  // Random ordering is the bottleneck

void Run() {
  bench::PrintBenchHeader(
      "Figure 6 — Precomputation time",
      "index build wall clock [s] per reordering approach; c = 0.95");

  const auto all = bench::LoadAllDatasets(kScaleMultiplier);
  const std::vector<reorder::Method> methods = {
      reorder::Method::kDegree, reorder::Method::kCluster,
      reorder::Method::kHybrid, reorder::Method::kRcm,
      reorder::Method::kRandom};

  bench::PrintTableHeader(
      {"dataset", "Degree", "Cluster", "Hybrid", "RCM", "Random"});
  for (const auto& dataset : all) {
    std::vector<double> row;
    for (const auto method : methods) {
      core::KDashOptions options;
      options.reorder_method = method;
      const auto index = core::KDashIndex::Build(dataset.graph, options);
      row.push_back(index.stats().total_seconds);
    }
    bench::PrintTableRow(dataset.name, row, "%14.3f");
    std::fflush(stdout);
  }

  std::printf(
      "\nExpected shape (paper): the sparsity-aware orderings precompute up\n"
      "to ~140x faster than Random because the factors and inverses they\n"
      "produce are far sparser (compare Figure 5).\n");
}

}  // namespace
}  // namespace kdash

int main() {
  kdash::Run();
  return 0;
}
