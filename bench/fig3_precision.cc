// Figure 3: precision@5 of NB_LIN vs SVD target rank and of Basic Push
// Algorithm vs hub count, on the Dictionary dataset; K-dash is exact
// (precision 1) throughout.
#include <cstdio>

#include "baselines/basic_push.h"
#include "baselines/nb_lin.h"
#include "bench_util.h"
#include "core/kdash_index.h"
#include "core/kdash_searcher.h"
#include "rwr/power_iteration.h"

namespace kdash {
namespace {

void Run() {
  bench::PrintBenchHeader(
      "Figure 3 — Precision vs target rank / number of hub nodes",
      "precision@5 against the iterative ground truth; Dictionary dataset");

  const auto dataset =
      datasets::MakeDataset(datasets::DatasetId::kDictionary, bench::BenchScale());
  const auto& graph = dataset.graph;
  const auto a = graph.NormalizedAdjacency();
  const auto queries = bench::SampleQueries(graph, 15);
  constexpr std::size_t kTopK = 5;

  // Ground truth per query.
  std::vector<std::vector<ScoredNode>> truth;
  for (const NodeId q : queries) {
    truth.push_back(rwr::TopKByPowerIteration(a, q, kTopK, {}));
  }

  // Paper sweeps {100, 400, 700, 1000} on n = 13,356: keep the same n
  // fractions (≈ 0.75%, 3%, 5.2%, 7.5% of n).
  const int n = graph.num_nodes();
  const std::vector<int> params = {std::max(4, n / 134), std::max(8, n / 33),
                                   std::max(12, n / 19), std::max(16, n / 13)};

  const auto index = core::KDashIndex::Build(graph, {});
  core::KDashSearcher searcher(&index);

  bench::PrintTableHeader({"param", "NB_LIN", "BPA", "K-dash"});
  for (const int param : params) {
    const baselines::NbLin nb(a, {.restart_prob = 0.95, .target_rank = param});
    const baselines::BasicPush bpa(a, {.restart_prob = 0.95, .num_hubs = param});

    double nb_precision = 0.0, bpa_precision = 0.0, kdash_precision = 0.0;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      nb_precision +=
          bench::PrecisionAtK(nb.TopK(queries[i], kTopK), truth[i], kTopK);
      // BPA returns a recall-1 answer set that can be LARGER than K (the
      // paper notes this); its precision is |answer ∩ top-k| / |answer|.
      const auto bpa_answer = bpa.TopK(queries[i], kTopK);
      std::size_t hits = 0;
      for (const auto& entry : bpa_answer) {
        for (const auto& t : truth[i]) {
          if (t.node == entry.node) {
            ++hits;
            break;
          }
        }
      }
      bpa_precision += bpa_answer.empty()
                           ? 0.0
                           : static_cast<double>(hits) /
                                 static_cast<double>(bpa_answer.size());
      kdash_precision += bench::PrecisionAtK(searcher.TopK(queries[i], kTopK),
                                             truth[i], kTopK);
    }
    const double count = static_cast<double>(queries.size());
    bench::PrintTableRow("rank/hubs=" + std::to_string(param),
                         {nb_precision / count, bpa_precision / count,
                          kdash_precision / count},
                         "%14.3f");
    std::fflush(stdout);
  }

  std::printf(
      "\nExpected shape (paper): K-dash precision is exactly 1 everywhere;\n"
      "NB_LIN precision rises with rank but stays below 1; BPA precision is\n"
      "roughly flat in the hub count (its answer set has recall 1 but can\n"
      "be larger than K).\n");
}

}  // namespace
}  // namespace kdash

int main() {
  kdash::Run();
  return 0;
}
