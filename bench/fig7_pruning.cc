// Figure 7: effect of the tree-estimation pruning — K-dash vs K-dash with
// the pruning removed (every reachable node's proximity computed).
#include <cstdio>

#include "bench_util.h"
#include "core/kdash_index.h"
#include "core/kdash_searcher.h"

namespace kdash {
namespace {

void Run() {
  bench::PrintBenchHeader(
      "Figure 7 — Effect of tree estimation (pruning)",
      "median per-query wall clock [s], K = 5, hybrid reordering");

  const auto all = bench::LoadAllDatasets();
  bench::PrintTableHeader(
      {"dataset", "K-dash", "NoPruning", "speedup", "prox/query",
       "prox-nopr"});

  for (const auto& dataset : all) {
    const auto index = core::KDashIndex::Build(dataset.graph, {});
    core::KDashSearcher searcher(&index);
    const auto queries = bench::SampleQueries(dataset.graph, 10);

    core::SearchOptions no_pruning;
    no_pruning.use_pruning = false;

    double prox_pruned = 0.0, prox_unpruned = 0.0;
    for (const NodeId q : queries) {
      core::SearchStats stats;
      searcher.TopK(q, 5, {}, &stats);
      prox_pruned += static_cast<double>(stats.proximity_computations);
      searcher.TopK(q, 5, no_pruning, &stats);
      prox_unpruned += static_cast<double>(stats.proximity_computations);
    }
    prox_pruned /= static_cast<double>(queries.size());
    prox_unpruned /= static_cast<double>(queries.size());

    const double pruned_time = bench::MedianSeconds(
                                   [&] {
                                     for (const NodeId q : queries) {
                                       searcher.TopK(q, 5);
                                     }
                                   },
                                   3) /
                               static_cast<double>(queries.size());
    const double unpruned_time =
        bench::MedianSeconds(
            [&] {
              for (const NodeId q : queries) searcher.TopK(q, 5, no_pruning);
            },
            3) /
        static_cast<double>(queries.size());

    bench::PrintTableRow(dataset.name,
                         {pruned_time, unpruned_time,
                          unpruned_time / pruned_time, prox_pruned,
                          prox_unpruned},
                         "%14.4g");
    std::fflush(stdout);
  }

  std::printf(
      "\nExpected shape (paper): pruning wins on every dataset (up to\n"
      "~1000x on graphs where the BFS tree is large but the top-k is\n"
      "local); even Without-pruning stays faster than NB_LIN.\n");
}

}  // namespace
}  // namespace kdash

int main() {
  kdash::Run();
  return 0;
}
