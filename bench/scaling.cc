// Scaling study (supports Section 5's complexity discussion): K-dash
// precompute and query cost as the Dictionary-family graph grows. The
// paper's claim is O(n + m) *practical* query time — the per-query numbers
// here should grow far slower than n, and the precompute roughly with the
// inverse-factor nonzeros.
#include <cstdio>

#include "bench_util.h"
#include "core/kdash_index.h"
#include "core/kdash_searcher.h"

namespace kdash {
namespace {

void Run() {
  bench::PrintBenchHeader(
      "Scaling — K-dash cost vs graph size",
      "Dictionary-family graphs at growing scale; K = 5, hybrid reordering");

  bench::PrintTableHeader({"n", "m", "precomp[s]", "nnz(inv)", "query[s]",
                           "prox/query"});
  for (const double scale : {0.125, 0.25, 0.5, 1.0, 2.0}) {
    const auto dataset = datasets::MakeDataset(
        datasets::DatasetId::kDictionary, bench::BenchScale() * scale);
    const auto index = core::KDashIndex::Build(dataset.graph, {});
    core::KDashSearcher searcher(&index);
    const auto queries = bench::SampleQueries(dataset.graph, 10);

    double prox = 0.0;
    for (const NodeId q : queries) {
      core::SearchStats stats;
      searcher.TopK(q, 5, {}, &stats);
      prox += static_cast<double>(stats.proximity_computations);
    }
    const double query_time =
        bench::MedianSeconds(
            [&] {
              for (const NodeId q : queries) searcher.TopK(q, 5);
            },
            3) /
        static_cast<double>(queries.size());

    bench::PrintTableRow(
        std::to_string(dataset.graph.num_nodes()),
        {static_cast<double>(dataset.graph.num_edges()),
         index.stats().total_seconds,
         static_cast<double>(index.stats().nnz_lower_inverse +
                             index.stats().nnz_upper_inverse),
         query_time, prox / static_cast<double>(queries.size())},
        "%14.4g");
    std::fflush(stdout);
  }

  std::printf(
      "\nExpected shape: query time and proximity computations stay nearly\n"
      "flat as n grows 16x — the pruned search only touches the query's\n"
      "neighborhood — while the precompute grows with the inverse factors.\n");
}

}  // namespace
}  // namespace kdash

int main() {
  kdash::Run();
  return 0;
}
