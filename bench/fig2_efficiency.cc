// Figure 2: query wall-clock time of K-dash(5/25/50), NB_LIN(low/high rank)
// and Basic Push Algorithm(5/25/50) on the five datasets.
//
// The paper sweeps SVD target ranks {100, 1000} and 1,000 hub nodes on
// full-size datasets; ranks and hub counts here scale with the dataset so
// their *ratio* to n matches the paper's (see EXPERIMENTS.md).
#include <cstdio>

#include "baselines/basic_push.h"
#include "baselines/nb_lin.h"
#include "bench_util.h"
#include "common/timer.h"
#include "core/kdash_index.h"
#include "core/kdash_searcher.h"

namespace kdash {
namespace {

void Run() {
  bench::PrintBenchHeader(
      "Figure 2 — Efficiency of K-dash",
      "median per-query wall clock [s]; c = 0.95, hybrid reordering");

  const auto all = bench::LoadAllDatasets();
  // Paper: ranks 100 / 1000 at n = 13k..265k → keep rank/n ratios similar.
  const int queries_per_dataset = 10;

  bench::PrintTableHeader({"dataset", "K-dash(5)", "K-dash(25)", "K-dash(50)",
                           "NB_LIN(lo)", "NB_LIN(hi)", "BPA(5)", "BPA(25)",
                           "BPA(50)"});

  for (const auto& dataset : all) {
    const auto& graph = dataset.graph;
    const auto a = graph.NormalizedAdjacency();
    const auto queries = bench::SampleQueries(graph, queries_per_dataset);

    const int rank_lo = std::max(8, static_cast<int>(graph.num_nodes()) / 128);
    const int rank_hi = std::max(32, static_cast<int>(graph.num_nodes()) / 24);
    const int hubs = std::max(16, static_cast<int>(graph.num_nodes()) / 24);

    const auto index = core::KDashIndex::Build(graph, {});
    core::KDashSearcher searcher(&index);
    const baselines::NbLin nb_lo(a, {.restart_prob = 0.95, .target_rank = rank_lo});
    const baselines::NbLin nb_hi(a, {.restart_prob = 0.95, .target_rank = rank_hi});
    const baselines::BasicPush bpa(a, {.restart_prob = 0.95, .num_hubs = hubs});

    auto time_queries = [&](auto&& fn) {
      return bench::MedianSeconds(
                 [&] {
                   for (const NodeId q : queries) fn(q);
                 },
                 3) /
             queries_per_dataset;
    };

    std::vector<double> row;
    for (const std::size_t k : {5u, 25u, 50u}) {
      row.push_back(time_queries([&](NodeId q) { searcher.TopK(q, k); }));
    }
    row.push_back(time_queries([&](NodeId q) { nb_lo.TopK(q, 5); }));
    row.push_back(time_queries([&](NodeId q) { nb_hi.TopK(q, 5); }));
    for (const std::size_t k : {5u, 25u, 50u}) {
      row.push_back(time_queries([&](NodeId q) { bpa.TopK(q, k); }));
    }
    bench::PrintTableRow(dataset.name, row, "%14.3e");
    std::fflush(stdout);
  }

  std::printf(
      "\nExpected shape (paper): K-dash is orders of magnitude faster than\n"
      "both baselines on every dataset; NB_LIN cost grows with rank; BPA is\n"
      "the slowest. K has little effect on K-dash's time.\n");
}

}  // namespace
}  // namespace kdash

int main() {
  kdash::Run();
  return 0;
}
