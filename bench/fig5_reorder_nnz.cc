// Figure 5: ratio of the number of nonzeros in the inverse matrices
// (L⁻¹ plus U⁻¹) to the number of graph edges, for the Degree, Cluster,
// Hybrid, and Random reorderings, on each dataset.
//
// Random ordering makes the inverses (and the benchmark) dramatically more
// expensive — exactly the paper's point — so this binary runs at a reduced
// default scale (override with KDASH_BENCH_SCALE).
#include <cstdio>

#include "bench_util.h"
#include "core/kdash_index.h"

namespace kdash {
namespace {

constexpr double kScaleMultiplier = 0.4;

void Run() {
  bench::PrintBenchHeader(
      "Figure 5 — Effect of reordering approaches",
      "nnz(L^-1) + nnz(U^-1) divided by the number of edges m; c = 0.95");

  const auto all = bench::LoadAllDatasets(kScaleMultiplier);
  const std::vector<reorder::Method> methods = {
      reorder::Method::kDegree, reorder::Method::kCluster,
      reorder::Method::kHybrid, reorder::Method::kRcm,
      reorder::Method::kRandom};

  // Two accountings:
  //  * exact:   every numerically nonzero entry is kept (drop tolerance 0,
  //             K-dash's default — the exactness guarantee of Theorem 2).
  //             The inverse of a triangular factor is reachability-dense,
  //             so these counts include entries down to ~(1-c)^depth.
  //  * eps:     entries below double-precision ranking resolution (1e-16)
  //             dropped. This is the accounting under which the paper's
  //             "number of non-zero elements is O(m)" claim is reproducible
  //             (see EXPERIMENTS.md); top-5 results are unaffected at this
  //             tolerance (ablation_drop_tolerance).
  for (const double tolerance : {0.0, 1e-16}) {
    std::printf("\n--- drop tolerance %.0e (%s) ---\n", tolerance,
                tolerance == 0.0 ? "exact" : "machine-precision accounting");
    bench::PrintTableHeader(
        {"dataset", "Degree", "Cluster", "Hybrid", "RCM", "Random"});
    for (const auto& dataset : all) {
      std::vector<double> row;
      for (const auto method : methods) {
        core::KDashOptions options;
        options.reorder_method = method;
        options.drop_tolerance = tolerance;
        const auto index = core::KDashIndex::Build(dataset.graph, options);
        const double nnz = static_cast<double>(
            index.stats().nnz_lower_inverse + index.stats().nnz_upper_inverse);
        row.push_back(nnz / static_cast<double>(dataset.graph.num_edges()));
      }
      bench::PrintTableRow(dataset.name, row, "%14.2f");
      std::fflush(stdout);
    }
  }

  std::printf(
      "\nExpected shape (paper): Degree/Cluster/Hybrid give far fewer\n"
      "nonzeros than Random, with the hybrid/cluster orderings exploiting\n"
      "the block structure; under the machine-precision accounting the\n"
      "sparsity-aware orderings approach the size of the graph itself.\n");
}

}  // namespace
}  // namespace kdash

int main() {
  kdash::Run();
  return 0;
}
