// Figure 9 (Appendix D.1): number of exact proximity computations when the
// BFS tree is rooted at the query node (K-dash proper) vs at a random node.
#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "core/kdash_index.h"
#include "core/kdash_searcher.h"

namespace kdash {
namespace {

void Run() {
  bench::PrintBenchHeader(
      "Figure 9 — Comparison of root node selection",
      "mean exact proximity computations per query, K = 5");

  const auto all = bench::LoadAllDatasets();
  bench::PrintTableHeader({"dataset", "K-dash", "Random"});

  for (const auto& dataset : all) {
    const auto index = core::KDashIndex::Build(dataset.graph, {});
    core::KDashSearcher searcher(&index);
    const auto queries = bench::SampleQueries(dataset.graph, 10);
    Rng rng(99);

    double query_root = 0.0, random_root = 0.0;
    for (const NodeId q : queries) {
      core::SearchStats stats;
      searcher.TopK(q, 5, {}, &stats);
      query_root += static_cast<double>(stats.proximity_computations);

      core::SearchOptions options;
      options.root_override = rng.NextNode(dataset.graph.num_nodes());
      searcher.TopK(q, 5, options, &stats);
      random_root += static_cast<double>(stats.proximity_computations);
    }
    query_root /= static_cast<double>(queries.size());
    random_root /= static_cast<double>(queries.size());
    bench::PrintTableRow(dataset.name, {query_root, random_root}, "%14.1f");
    std::fflush(stdout);
  }

  std::printf(
      "\nExpected shape (paper): rooting the tree at the query node needs\n"
      "far fewer proximity computations — the query's neighborhood holds\n"
      "the high-proximity nodes, so the threshold rises fast and pruning\n"
      "fires early. (Random rooting is a diagnostic only: it does not\n"
      "guarantee exactness.)\n");
}

}  // namespace
}  // namespace kdash

int main() {
  kdash::Run();
  return 0;
}
