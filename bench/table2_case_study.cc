// Table 2: ranked top-5 term lists for two company names and three
// operating-system names on the FOLDOC-like dictionary graph, K-dash vs
// NB_LIN.
#include <cstdio>

#include "baselines/nb_lin.h"
#include "bench_util.h"
#include "core/kdash_index.h"
#include "core/kdash_searcher.h"
#include "datasets/foldoc_case_study.h"

namespace kdash {
namespace {

void Run() {
  bench::PrintBenchHeader(
      "Table 2 — Ranked lists for company and operating system names",
      "top-5 terms on the FOLDOC-like dictionary graph; K-dash vs NB_LIN");

  const auto term_graph = datasets::MakeFoldocCaseStudy();
  const auto a = term_graph.graph.NormalizedAdjacency();

  const auto index = core::KDashIndex::Build(term_graph.graph, {});
  core::KDashSearcher searcher(&index);
  const baselines::NbLin nb_lin(
      a, {.restart_prob = 0.95,
          .target_rank = term_graph.graph.num_nodes() / 13});

  auto print_list = [&](const char* method,
                        const std::vector<ScoredNode>& list) {
    std::printf("  %-8s", method);
    for (const auto& entry : list) {
      std::printf(" | %s",
                  term_graph.names[static_cast<std::size_t>(entry.node)].c_str());
    }
    std::printf("\n");
  };

  for (const std::string& query : datasets::CaseStudyQueries()) {
    const NodeId q = term_graph.IdOf(query);
    std::printf("\nTerm: %s\n", query.c_str());
    print_list("K-dash", searcher.TopK(q, 5));
    print_list("NB_LIN", nb_lin.TopK(q, 5));
  }

  std::printf(
      "\nExpected shape (paper's Table 2): K-dash surfaces the semantically\n"
      "related terms (MS-DOS/IBM PC/Windows for Microsoft, Apple II for\n"
      "APPLE, the Windows version cluster, the Macintosh cluster, the\n"
      "Linux/Unix documentation cluster); the low-rank approximation mixes\n"
      "in unrelated vocabulary.\n");
}

}  // namespace
}  // namespace kdash

int main() {
  kdash::Run();
  return 0;
}
