// Summary comparison of every engine in the library on one dataset:
// precompute cost, per-query cost, and precision@5 against the iterative
// ground truth. Condenses the paper's Section 6 narrative into one table
// and adds the Sun-et-al. partition-local method (cited in Section 2 as
// the approximation NB_LIN superseded).
#include <cstdio>

#include "baselines/b_lin.h"
#include "baselines/basic_push.h"
#include "baselines/local_rwr.h"
#include "baselines/monte_carlo.h"
#include "baselines/nb_lin.h"
#include "bench_util.h"
#include "common/timer.h"
#include "core/kdash_index.h"
#include "core/kdash_searcher.h"
#include "rwr/power_iteration.h"

namespace kdash {
namespace {

void Run() {
  bench::PrintBenchHeader(
      "Baseline comparison — every engine, one table",
      "Dictionary dataset; K = 5; precision vs iterative ground truth");

  const auto dataset =
      datasets::MakeDataset(datasets::DatasetId::kDictionary, bench::BenchScale());
  const auto& graph = dataset.graph;
  const auto a = graph.NormalizedAdjacency();
  const auto queries = bench::SampleQueries(graph, 10);
  constexpr std::size_t kTopK = 5;

  std::vector<std::vector<ScoredNode>> truth;
  for (const NodeId q : queries) {
    truth.push_back(rwr::TopKByPowerIteration(a, q, kTopK, {}));
  }
  const int rank = std::max(16, graph.num_nodes() / 33);

  struct Row {
    std::string name;
    double precompute;
    double query;
    double precision;
  };
  std::vector<Row> rows;

  auto measure = [&](const std::string& name, double precompute_seconds,
                     auto&& top_k_fn) {
    double precision = 0.0;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      precision += bench::PrecisionAtK(top_k_fn(queries[i]), truth[i], kTopK);
    }
    precision /= static_cast<double>(queries.size());
    const double query_seconds =
        bench::MedianSeconds(
            [&] {
              for (const NodeId q : queries) top_k_fn(q);
            },
            3) /
        static_cast<double>(queries.size());
    rows.push_back({name, precompute_seconds, query_seconds, precision});
  };

  {
    measure("Iterative", 0.0, [&](NodeId q) {
      return rwr::TopKByPowerIteration(a, q, kTopK, {});
    });
  }
  {
    const auto index = core::KDashIndex::Build(graph, {});
    core::KDashSearcher searcher(&index);
    measure("K-dash", index.stats().total_seconds,
            [&](NodeId q) { return searcher.TopK(q, kTopK); });
  }
  {
    const baselines::NbLin nb(a, {.restart_prob = 0.95, .target_rank = rank});
    measure("NB_LIN", nb.precompute_seconds(),
            [&](NodeId q) { return nb.TopK(q, kTopK); });
  }
  {
    const baselines::BLin b_lin(graph,
                                {.restart_prob = 0.95, .target_rank = rank});
    measure("B_LIN", b_lin.precompute_seconds(),
            [&](NodeId q) { return b_lin.TopK(q, kTopK); });
  }
  {
    const baselines::BasicPush bpa(a, {.restart_prob = 0.95, .num_hubs = rank});
    measure("BasicPush", bpa.precompute_seconds(),
            [&](NodeId q) { return bpa.TopK(q, kTopK); });
  }
  {
    WallTimer timer;
    const baselines::PartitionLocalRwr local(graph, {});
    measure("SunLocal", timer.Seconds(),
            [&](NodeId q) { return local.TopK(q, kTopK); });
  }
  {
    WallTimer timer;
    const baselines::MonteCarloRwr mc(
        a, {.restart_prob = 0.95, .num_walks = 5000});
    measure("MonteCarlo", timer.Seconds(),
            [&](NodeId q) { return mc.TopK(q, kTopK); });
  }

  bench::PrintTableHeader({"method", "precomp[s]", "query[s]", "precision"});
  for (const Row& row : rows) {
    bench::PrintTableRow(row.name, {row.precompute, row.query, row.precision},
                         "%14.4g");
  }

  std::printf(
      "\nExpected shape: only Iterative and K-dash reach precision 1 (and\n"
      "BasicPush via its recall-1 sets); K-dash answers queries orders of\n"
      "magnitude faster than Iterative. SunLocal is fast but blind to\n"
      "cross-partition proximity; NB_LIN/B_LIN trade rank for accuracy;\n"
      "MonteCarlo converges like 1/sqrt(walks) — never exactly.\n");
}

}  // namespace
}  // namespace kdash

int main() {
  kdash::Run();
  return 0;
}
