#include "bench_util.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/parallel.h"
#include "common/random.h"
#include "common/timer.h"
#include "obs/metrics.h"

// Stamped by CMake at configure time (git rev-parse --short HEAD); builds
// outside a git checkout fall back to "unknown".
#ifndef KDASH_GIT_SHA
#define KDASH_GIT_SHA "unknown"
#endif

namespace kdash::bench {

double BenchScale() {
  const char* env = std::getenv("KDASH_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double value = std::atof(env);
  return std::clamp(value, 0.01, 16.0);
}

std::vector<datasets::Dataset> LoadAllDatasets(double multiplier) {
  std::vector<datasets::Dataset> result;
  for (const auto id : datasets::AllDatasets()) {
    result.push_back(datasets::MakeDataset(id, BenchScale() * multiplier));
  }
  return result;
}

std::vector<NodeId> SampleQueries(const graph::Graph& graph, int count,
                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<NodeId> queries;
  int attempts = 0;
  while (static_cast<int>(queries.size()) < count && attempts < count * 100) {
    ++attempts;
    const NodeId q = rng.NextNode(graph.num_nodes());
    if (graph.OutDegree(q) > 0) queries.push_back(q);
  }
  while (static_cast<int>(queries.size()) < count) queries.push_back(0);
  return queries;
}

double MedianSeconds(const std::function<void()>& fn, int repetitions) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(repetitions));
  for (int r = 0; r < repetitions; ++r) {
    const WallTimer timer;
    fn();
    times.push_back(timer.Seconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

double PrecisionAtK(const std::vector<ScoredNode>& approx,
                    const std::vector<ScoredNode>& truth, std::size_t k) {
  std::size_t hits = 0;
  const std::size_t truth_count = std::min(k, truth.size());
  for (std::size_t i = 0; i < std::min(k, approx.size()); ++i) {
    for (std::size_t j = 0; j < truth_count; ++j) {
      if (approx[i].node == truth[j].node) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

namespace {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char ch : text) {
    if (ch == '"' || ch == '\\') out.push_back('\\');
    out.push_back(ch);
  }
  return out;
}

}  // namespace

JsonObject& JsonObject::Add(const std::string& key, double value) {
  char buffer[64];
  if (std::isfinite(value)) {
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  } else {
    std::snprintf(buffer, sizeof(buffer), "null");  // inf/nan: invalid JSON
  }
  if (!body_.empty()) body_ += ",";
  body_ += "\"" + JsonEscape(key) + "\":" + buffer;
  return *this;
}

JsonObject& JsonObject::Add(const std::string& key, Index value) {
  if (!body_.empty()) body_ += ",";
  body_ += "\"" + JsonEscape(key) + "\":" + std::to_string(value);
  return *this;
}

JsonObject& JsonObject::Add(const std::string& key, int value) {
  return Add(key, static_cast<Index>(value));
}

JsonObject& JsonObject::Add(const std::string& key, const std::string& value) {
  if (!body_.empty()) body_ += ",";
  body_ += "\"" + JsonEscape(key) + "\":\"" + JsonEscape(value) + "\"";
  return *this;
}

std::string JsonObject::str() const { return "{" + body_ + "}"; }

void PrintJsonRecords(const std::string& bench_name,
                      const std::vector<JsonObject>& records) {
  std::string out = "{\"bench\":\"" + JsonEscape(bench_name) + "\",\"scale\":";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", BenchScale());
  out += buffer;
  out += ",\"git_sha\":\"" + JsonEscape(KDASH_GIT_SHA) + "\"";
  out += ",\"num_threads\":" + std::to_string(DefaultNumThreads());
  out += ",\"records\":[";
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (i > 0) out += ",";
    out += records[i].str();
  }
  out += "],\"metrics\":" + obs::MetricRegistry::Global().MetricsArrayJson();
  out += "}";
  std::printf("%s\n", out.c_str());
}

void PrintBenchHeader(const std::string& title, const std::string& what) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("%s\n", what.c_str());
  std::printf("dataset scale: %.2f (KDASH_BENCH_SCALE; 4.0 = paper-size)\n",
              BenchScale());
  std::printf("==============================================================\n");
}

void PrintTableHeader(const std::vector<std::string>& columns) {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    std::printf(i == 0 ? "%-14s" : "%14s", columns[i].c_str());
  }
  std::printf("\n");
  for (std::size_t i = 0; i < columns.size(); ++i) std::printf("--------------");
  std::printf("\n");
}

void PrintTableRow(const std::string& label, const std::vector<double>& values,
                   const char* format) {
  std::printf("%-14s", label.c_str());
  for (const double v : values) std::printf(format, v);
  std::printf("\n");
}

void PrintTableRowText(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    std::printf(i == 0 ? "%-14s" : "%14s", cells[i].c_str());
  }
  std::printf("\n");
}

}  // namespace kdash::bench
