// Serving-tier throughput: per-query synchronous Engine::Search from N
// concurrent clients versus the same clients submitting through the
// micro-batching BatchScheduler (requests coalesce into SearchBatch calls
// on the shared pool), plus the scheduler over a ShardedEngine and a
// cache-on vs cache-off scheduler pair on the same repeat-heavy stream
// (serving/result_cache.h answers cross-batch repeats without the
// backend), plus the distributed tier: a serving::Router fanning the same
// queries over per-shard loopback-TCP workers (tools/net_util.h LineServer
// — the kdash_worker stack in-process), healthy and with one worker dead
// under a degrade policy. Emits one JSON record per (clients, mode) cell —
// the cross-PR perf artifact the serving CI job uploads.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "obs/metrics.h"
#include "serving/batch_scheduler.h"
#include "serving/router.h"
#include "serving/sharded_engine.h"
#include "tools/net_util.h"

namespace kdash::bench {
namespace {

struct Measurement {
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double coalesced_frac = 0.0;  // scheduler modes: duplicates shared per run
};

double PercentileUs(std::vector<double>& latencies, double fraction) {
  if (latencies.empty()) return 0.0;
  const auto at = static_cast<std::size_t>(
      fraction * static_cast<double>(latencies.size() - 1));
  std::nth_element(latencies.begin(), latencies.begin() + static_cast<long>(at),
                   latencies.end());
  return latencies[at];
}

// N client threads issue their share of `queries`, each measuring
// per-request wall latency. Slices are carved before the clock starts and
// handed to each client mutably, so an async client can move its queries
// into Submit instead of copying on the hot path.
Measurement RunClients(
    int clients, const std::vector<Query>& queries,
    const std::function<void(int client, std::vector<Query>&,
                             std::vector<double>*)>& run_client) {
  std::vector<std::vector<Query>> slices(static_cast<std::size_t>(clients));
  for (std::size_t i = 0; i < queries.size(); ++i) {
    slices[i % static_cast<std::size_t>(clients)].push_back(queries[i]);
  }
  std::vector<std::vector<double>> latencies(static_cast<std::size_t>(clients));
  WallTimer timer;
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      run_client(c, slices[static_cast<std::size_t>(c)],
                 &latencies[static_cast<std::size_t>(c)]);
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double seconds = timer.Seconds();

  Measurement m;
  m.qps = static_cast<double>(queries.size()) / seconds;
  std::vector<double> all;
  for (const auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  m.p50_us = PercentileUs(all, 0.50);
  m.p99_us = PercentileUs(all, 0.99);
  return m;
}

Measurement RunSync(const Engine& engine, int clients,
                    const std::vector<Query>& queries) {
  return RunClients(clients, queries,
                    [&](int, std::vector<Query>& slice,
                        std::vector<double>* latencies) {
                      for (const Query& query : slice) {
                        WallTimer timer;
                        const auto result = engine.Search(query);
                        KDASH_CHECK(result.ok());
                        latencies->push_back(timer.Seconds() * 1e6);
                      }
                    });
}

// Each client keeps up to `window` requests in flight so the scheduler can
// form full batches; latency is submit→resolve per request. A deep window
// is the async API's natural regime: clients pipeline instead of blocking
// per request, so the scheduler thread runs nearly alone while client
// threads sleep on futures.
Measurement RunScheduled(serving::BatchScheduler& scheduler, int clients,
                         const std::vector<Query>& queries,
                         std::size_t window = 512) {
  return RunClients(
      clients, queries,
      [&](int, std::vector<Query>& slice, std::vector<double>* latencies) {
        struct InFlight {
          WallTimer timer;
          std::future<Result<SearchResult>> future;
        };
        std::vector<InFlight> in_flight;
        in_flight.reserve(slice.size());
        std::size_t head = 0;
        const auto resolve = [&](InFlight& request) {
          KDASH_CHECK(request.future.get().ok());
          latencies->push_back(request.timer.Seconds() * 1e6);
        };
        for (Query& query : slice) {
          in_flight.push_back({WallTimer(), scheduler.Submit(std::move(query))});
          if (in_flight.size() - head >= window) resolve(in_flight[head++]);
        }
        for (; head < in_flight.size(); ++head) resolve(in_flight[head]);
      });
}

// One in-process distributed worker: the kdash_worker stack (LineServer +
// BatchScheduler + shard engine) on an ephemeral loopback port.
class BenchWorker {
 public:
  explicit BenchWorker(const Engine& shard)
      : scheduler_(
            [&shard](std::span<const Query> batch) {
              return shard.SearchBatch(batch);
            },
            SchedulerOptions()),
        server_(scheduler_, StreamConfigFor(shard)) {
    KDASH_CHECK(server_.Listen(0).ok());
    thread_ = std::thread([this] { server_.Serve(); });
  }

  ~BenchWorker() { Kill(); }

  int port() const { return server_.port(); }

  void Kill() {
    if (!thread_.joinable()) return;
    server_.Stop();
    thread_.join();
    scheduler_.Shutdown();
  }

 private:
  static serving::BatchSchedulerOptions SchedulerOptions() {
    serving::BatchSchedulerOptions options;
    options.max_batch_size = 256;
    options.max_wait = std::chrono::microseconds(200);
    options.max_queue_depth = 0;
    return options;
  }

  static tools::StreamConfig StreamConfigFor(const Engine& shard) {
    tools::StreamConfig config;
    config.pong_shards = 1;
    config.pong_nodes = shard.num_nodes();
    return config;
  }

  serving::BatchScheduler scheduler_;
  tools::LineServer server_;
  std::thread thread_;
};

// Synchronous per-client router calls: the fan-out inside each Search is
// already parallel over the IO pool, so clients model front-end threads.
Measurement RunRouter(const serving::Router& router, int clients,
                      const std::vector<Query>& queries) {
  return RunClients(clients, queries,
                    [&](int, std::vector<Query>& slice,
                        std::vector<double>* latencies) {
                      for (const Query& query : slice) {
                        WallTimer timer;
                        const auto result = router.Search(query);
                        KDASH_CHECK(result.ok()) << result.status();
                        latencies->push_back(timer.Seconds() * 1e6);
                      }
                    });
}

int Main() {
  const auto n = static_cast<NodeId>(8000 * BenchScale());
  PrintBenchHeader(
      "Serving throughput: sync Search vs micro-batched scheduler",
      "clients x {sync, scheduler, sharded-scheduler} QPS; pool threads: " +
          std::to_string(DefaultNumThreads()));

  Rng rng(42);
  const auto graph =
      graph::PowerLawCluster(n, 6, 0.6, /*directed=*/true, 0.4, rng);
  auto engine = Engine::Build(graph, {});
  KDASH_CHECK(engine.ok());

  serving::ShardedEngineOptions sharded_options;
  sharded_options.num_shards = 4;
  auto sharded = serving::ShardedEngine::Build(graph, sharded_options);
  KDASH_CHECK(sharded.ok());

  // Serving traffic is head-heavy and bursty: most requests follow entity
  // popularity (modeled as out-degree-weighted sampling), and a trending
  // slice concentrates on a small rotating hot set — the thundering-herd
  // pattern whose duplicate requests the scheduler's in-batch coalescing
  // answers once per batch. (The paper's figure benches keep their uniform
  // sampling; this bench models the serving tier.)
  std::vector<double> cumulative(static_cast<std::size_t>(graph.num_nodes()));
  double total_weight = 0.0;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    total_weight += static_cast<double>(graph.OutNeighbors(u).size());
    cumulative[static_cast<std::size_t>(u)] = total_weight;
  }
  Rng query_rng(7);
  const auto weighted_node = [&] {
    const double pick = query_rng.NextDouble() * total_weight;
    const auto at = std::lower_bound(cumulative.begin(), cumulative.end(), pick);
    return static_cast<NodeId>(at - cumulative.begin());
  };
  constexpr std::size_t kStreamLength = 4096;
  constexpr std::size_t kTrendingSetSize = 8;
  constexpr std::size_t kTrendingRotation = 512;  // hot set turns over
  constexpr double kTrendingFraction = 0.25;
  std::vector<NodeId> trending(kTrendingSetSize);
  std::vector<Query> queries;
  queries.reserve(kStreamLength);
  while (queries.size() < kStreamLength) {
    if (queries.size() % kTrendingRotation == 0) {
      for (NodeId& hot : trending) hot = weighted_node();
    }
    const NodeId source =
        query_rng.NextDouble() < kTrendingFraction
            ? trending[query_rng.NextBounded(kTrendingSetSize)]
            : weighted_node();
    queries.push_back(Query::Single(source, 10));
  }

  serving::BatchSchedulerOptions scheduler_options;
  scheduler_options.max_batch_size = 256;
  scheduler_options.max_wait = std::chrono::microseconds(200);
  // Throughput measurement wants every request answered, not shed: the
  // client windows above can legitimately stack clients x window requests.
  scheduler_options.max_queue_depth = 0;

  // The sharded column is a scale-out configuration (1/P of the U⁻¹
  // payload per shard, no global pruning threshold), not a single-host
  // latency play — a query subset keeps its cells affordable.
  const std::vector<Query> sharded_queries(queries.begin(),
                                           queries.begin() + 256);

  // Cache-on twin of scheduler_options: same batching, plus the
  // cross-batch result cache. The stream's rotating hot set repeats
  // queries across batches, which is exactly the traffic the cache serves.
  serving::BatchSchedulerOptions cached_options = scheduler_options;
  cached_options.cache_entries = 1024;
  obs::Counter& cache_hits =
      obs::MetricRegistry::Global().GetCounter("cache.hit");

  const std::vector<int> client_counts{1, 2, 4, 8};
  PrintTableHeader({"clients", "sync_qps", "sched_qps", "sched_x",
                    "cached_qps", "cache_x", "sharded_qps", "dist_qps",
                    "dist_dead_qps", "p99_us"});

  // Five timed repetitions per cell, sync and scheduler interleaved so CPU
  // frequency / container-load drift hits both modes alike; report the
  // median-by-QPS of each. One untimed warmup pass first.
  const auto median = [](std::vector<Measurement> runs) {
    std::sort(runs.begin(), runs.end(),
              [](const Measurement& a, const Measurement& b) {
                return a.qps < b.qps;
              });
    return runs[runs.size() / 2];
  };
  RunSync(*engine, 1, sharded_queries);  // warmup

  std::vector<JsonObject> records;
  for (const int clients : client_counts) {
    std::vector<Measurement> sync_runs, scheduled_runs, cached_runs;
    std::vector<double> paired_ratios, cache_ratios;
    double cache_hit_frac = 0.0;
    for (int rep = 0; rep < 5; ++rep) {
      sync_runs.push_back(RunSync(*engine, clients, queries));
      serving::BatchScheduler scheduler(
          [&](std::span<const Query> batch) { return engine->SearchBatch(batch); },
          scheduler_options);
      Measurement m = RunScheduled(scheduler, clients, queries);
      scheduler.Shutdown();
      const auto stats = scheduler.stats();
      m.coalesced_frac = static_cast<double>(stats.coalesced) /
                         static_cast<double>(std::max<std::uint64_t>(
                             1, stats.submitted));
      scheduled_runs.push_back(m);
      // Paired ratio: this rep's sync and scheduled runs are adjacent in
      // time, so machine-load drift cancels out of the quotient.
      paired_ratios.push_back(m.qps / sync_runs.back().qps);

      // Cache-on twin, paired against the cache-off run just measured.
      // The cache is per-scheduler, so each rep starts cold — the measured
      // gain is what a fresh server sees over one pass of the stream.
      const std::uint64_t hits_before = cache_hits.Value();
      serving::BatchScheduler cached_scheduler(
          [&](std::span<const Query> batch) { return engine->SearchBatch(batch); },
          cached_options);
      cached_runs.push_back(RunScheduled(cached_scheduler, clients, queries));
      cached_scheduler.Shutdown();
      cache_hit_frac = static_cast<double>(cache_hits.Value() - hits_before) /
                       static_cast<double>(queries.size());
      cache_ratios.push_back(cached_runs.back().qps / m.qps);
    }
    std::sort(paired_ratios.begin(), paired_ratios.end());
    const double speedup = paired_ratios[paired_ratios.size() / 2];
    std::sort(cache_ratios.begin(), cache_ratios.end());
    const double cache_speedup = cache_ratios[cache_ratios.size() / 2];
    const Measurement sync = median(std::move(sync_runs));
    const Measurement scheduled = median(std::move(scheduled_runs));
    const Measurement cached = median(std::move(cached_runs));

    Measurement sharded_scheduled;
    {
      serving::BatchScheduler scheduler(
          [&](std::span<const Query> batch) {
            return sharded->SearchBatch(batch);
          },
          scheduler_options);
      sharded_scheduled = RunScheduled(scheduler, clients, sharded_queries);
      scheduler.Shutdown();
    }

    // Distributed tier: the router over one loopback worker per shard, on
    // the same query subset as the sharded column — first healthy, then
    // with the last worker killed under a degrade policy (answers stay
    // exact over the survivors; the cost is the failed slot's fast-fail
    // path on every query).
    Measurement dist, dist_dead;
    {
      std::vector<std::unique_ptr<BenchWorker>> workers;
      std::string spec;
      for (int s = 0; s < sharded->num_shards(); ++s) {
        workers.push_back(std::make_unique<BenchWorker>(sharded->shard(s)));
        if (s > 0) spec.append(",");
        spec.append("127.0.0.1:" + std::to_string(workers.back()->port()));
      }
      serving::RouterOptions router_options;
      router_options.failure_policy.mode = serving::ShardFailureMode::kDegrade;
      router_options.failure_policy.max_retries = 1;
      router_options.failure_policy.initial_backoff =
          std::chrono::microseconds(100);
      router_options.remote.reconnect_backoff = std::chrono::milliseconds(1);
      auto router = serving::Router::Connect(spec, router_options);
      KDASH_CHECK(router.ok()) << router.status();
      RunRouter(**router, 1, sharded_queries);  // warmup (connections, pools)
      dist = RunRouter(**router, clients, sharded_queries);
      workers.back()->Kill();
      dist_dead = RunRouter(**router, clients, sharded_queries);
    }

    PrintTableRow("c=" + std::to_string(clients),
                  {static_cast<double>(clients), sync.qps, scheduled.qps,
                   speedup, cached.qps, cache_speedup, sharded_scheduled.qps,
                   dist.qps, dist_dead.qps, scheduled.p99_us});
    records.push_back(JsonObject()
                          .Add("clients", clients)
                          .Add("sync_qps", sync.qps)
                          .Add("sync_p99_us", sync.p99_us)
                          .Add("scheduler_qps", scheduled.qps)
                          .Add("scheduler_p50_us", scheduled.p50_us)
                          .Add("scheduler_p99_us", scheduled.p99_us)
                          .Add("scheduler_speedup", speedup)
                          .Add("scheduler_coalesced_frac",
                               scheduled.coalesced_frac)
                          .Add("cached_scheduler_qps", cached.qps)
                          .Add("cached_scheduler_p99_us", cached.p99_us)
                          .Add("cache_speedup", cache_speedup)
                          .Add("cache_hit_frac", cache_hit_frac)
                          .Add("sharded_scheduler_qps", sharded_scheduled.qps)
                          .Add("distributed_qps", dist.qps)
                          .Add("distributed_p99_us", dist.p99_us)
                          .Add("distributed_dead_worker_qps", dist_dead.qps));
  }
  PrintJsonRecords("serving_throughput", records);
  return 0;
}

}  // namespace
}  // namespace kdash::bench

int main() { return kdash::bench::Main(); }
