// Shared helpers for the figure/table benchmark binaries.
//
// Every bench binary prints the rows/series of one figure or table from the
// paper's evaluation (Section 6). Dataset sizes are controlled by the
// KDASH_BENCH_SCALE environment variable (default 1.0 ≈ a quarter of the
// paper's node counts; 4.0 reproduces the paper's sizes but makes the
// quadratic baselines very slow — see EXPERIMENTS.md).
#ifndef KDASH_BENCH_BENCH_UTIL_H_
#define KDASH_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/top_k.h"
#include "common/types.h"
#include "datasets/datasets.h"
#include "graph/graph.h"

namespace kdash::bench {

// Scale factor from KDASH_BENCH_SCALE (default 1.0, clamped to [0.01, 16]).
double BenchScale();

// All five dataset stand-ins at BenchScale() * multiplier.
std::vector<datasets::Dataset> LoadAllDatasets(double multiplier = 1.0);

// Samples query nodes, preferring nodes that can actually walk somewhere
// (out-degree > 0), mirroring the paper's random-query evaluation.
std::vector<NodeId> SampleQueries(const graph::Graph& graph, int count,
                                  std::uint64_t seed = 7);

// Median wall-clock seconds of `fn` over `repetitions` runs.
double MedianSeconds(const std::function<void()>& fn, int repetitions);

// Fraction of the exact top-k found in the first k entries of `approx`
// (the paper's precision metric of Figure 3).
double PrecisionAtK(const std::vector<ScoredNode>& approx,
                    const std::vector<ScoredNode>& truth, std::size_t k);

// ---- JSON emission --------------------------------------------------------

// Flat JSON object built field by field; numbers are printed with enough
// digits to round-trip a double. Used by benches that emit machine-readable
// records (so future PRs can diff perf trajectories).
class JsonObject {
 public:
  JsonObject& Add(const std::string& key, double value);
  JsonObject& Add(const std::string& key, Index value);
  JsonObject& Add(const std::string& key, int value);
  JsonObject& Add(const std::string& key, const std::string& value);

  // The serialized object, e.g. {"threads":4,"qps":123.5}.
  std::string str() const;

 private:
  std::string body_;
};

// Prints {"bench":<name>,"scale":<BenchScale()>,"git_sha":...,
// "num_threads":...,"records":[...],"metrics":[...]} on one line, making
// bench output grep-able between human-readable tables. git_sha is the
// configure-time HEAD (so cross-PR trajectories are attributable to a
// revision) and num_threads is the process-default pool size
// (KDASH_NUM_THREADS or hardware concurrency) the run executed under.
// "metrics" is the process metric registry's array snapshot
// (obs::MetricRegistry::MetricsArrayJson) at print time — every latency
// histogram the instrumented serving path recorded during the run, which
// is what tools/perf_gate.py's latency mode gates on (p99 of
// engine.search_us and friends).
void PrintJsonRecords(const std::string& bench_name,
                      const std::vector<JsonObject>& records);

// ---- table printing -------------------------------------------------------

// Prints "== title ==" plus a context line (scale, machine note).
void PrintBenchHeader(const std::string& title, const std::string& what);

// Left-aligned first column, right-aligned numeric columns.
void PrintTableHeader(const std::vector<std::string>& columns);
void PrintTableRow(const std::string& label, const std::vector<double>& values,
                   const char* format = "%14.6g");
void PrintTableRowText(const std::vector<std::string>& cells);

}  // namespace kdash::bench

#endif  // KDASH_BENCH_BENCH_UTIL_H_
