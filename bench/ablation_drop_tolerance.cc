// Ablation (ours): trade-off of the inverse-matrix drop tolerance.
// drop_tolerance = 0 is the paper's exact configuration; nonzero values
// shrink the inverses at the cost of the exactness guarantee. Reports nnz,
// per-query time, and the observed top-5 precision against ground truth.
#include <cstdio>

#include "bench_util.h"
#include "core/kdash_index.h"
#include "core/kdash_searcher.h"
#include "rwr/power_iteration.h"

namespace kdash {
namespace {

void Run() {
  bench::PrintBenchHeader(
      "Ablation — inverse-matrix drop tolerance",
      "nnz of inverses, per-query time, and precision@5 vs drop tolerance; "
      "Dictionary");

  const auto dataset =
      datasets::MakeDataset(datasets::DatasetId::kDictionary, bench::BenchScale());
  const auto a = dataset.graph.NormalizedAdjacency();
  const auto queries = bench::SampleQueries(dataset.graph, 10);

  std::vector<std::vector<ScoredNode>> truth;
  for (const NodeId q : queries) {
    truth.push_back(rwr::TopKByPowerIteration(a, q, 5, {}));
  }

  bench::PrintTableHeader({"tolerance", "nnz(inv)", "time/query", "precision"});
  for (const double tol : {0.0, 1e-15, 1e-12, 1e-9, 1e-6, 1e-4}) {
    core::KDashOptions options;
    options.drop_tolerance = tol;
    const auto index = core::KDashIndex::Build(dataset.graph, options);
    core::KDashSearcher searcher(&index);

    double precision = 0.0;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      precision +=
          bench::PrecisionAtK(searcher.TopK(queries[i], 5), truth[i], 5);
    }
    precision /= static_cast<double>(queries.size());

    const double time = bench::MedianSeconds(
                            [&] {
                              for (const NodeId q : queries) {
                                searcher.TopK(q, 5);
                              }
                            },
                            3) /
                        static_cast<double>(queries.size());
    char label[32];
    std::snprintf(label, sizeof(label), "%.0e", tol);
    bench::PrintTableRow(label,
                         {static_cast<double>(index.stats().nnz_lower_inverse +
                                              index.stats().nnz_upper_inverse),
                          time, precision},
                         "%14.4g");
    std::fflush(stdout);
  }

  std::printf(
      "\nExpected shape: tolerances up to ~1e-9 leave precision at 1 while\n"
      "shrinking the inverses (the dropped entries are below ranking\n"
      "resolution); aggressive tolerances eventually cost exactness —\n"
      "which is why K-dash defaults to 0.\n");
}

}  // namespace
}  // namespace kdash

int main() {
  kdash::Run();
  return 0;
}
