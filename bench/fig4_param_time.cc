// Figure 4: query wall-clock time of NB_LIN vs SVD target rank and of
// Basic Push Algorithm vs hub count (Dictionary dataset), with K-dash as
// the flat reference line.
#include <cstdio>

#include "baselines/basic_push.h"
#include "baselines/nb_lin.h"
#include "bench_util.h"
#include "core/kdash_index.h"
#include "core/kdash_searcher.h"

namespace kdash {
namespace {

void Run() {
  bench::PrintBenchHeader(
      "Figure 4 — Query time vs target rank / number of hub nodes",
      "median per-query wall clock [s]; Dictionary dataset, K = 5");

  const auto dataset =
      datasets::MakeDataset(datasets::DatasetId::kDictionary, bench::BenchScale());
  const auto& graph = dataset.graph;
  const auto a = graph.NormalizedAdjacency();
  const auto queries = bench::SampleQueries(graph, 10);
  constexpr std::size_t kTopK = 5;

  const int n = graph.num_nodes();
  const std::vector<int> params = {std::max(4, n / 134), std::max(8, n / 33),
                                   std::max(12, n / 19), std::max(16, n / 13)};

  const auto index = core::KDashIndex::Build(graph, {});
  core::KDashSearcher searcher(&index);

  auto per_query = [&](auto&& fn) {
    return bench::MedianSeconds(
               [&] {
                 for (const NodeId q : queries) fn(q);
               },
               3) /
           static_cast<double>(queries.size());
  };
  const double kdash_time =
      per_query([&](NodeId q) { searcher.TopK(q, kTopK); });

  bench::PrintTableHeader({"param", "NB_LIN", "BPA", "K-dash"});
  for (const int param : params) {
    const baselines::NbLin nb(a, {.restart_prob = 0.95, .target_rank = param});
    const baselines::BasicPush bpa(a, {.restart_prob = 0.95, .num_hubs = param});
    const double nb_time = per_query([&](NodeId q) { nb.TopK(q, kTopK); });
    const double bpa_time = per_query([&](NodeId q) { bpa.TopK(q, kTopK); });
    bench::PrintTableRow("rank/hubs=" + std::to_string(param),
                         {nb_time, bpa_time, kdash_time}, "%14.3e");
    std::fflush(stdout);
  }

  std::printf(
      "\nExpected shape (paper): NB_LIN time grows with the target rank;\n"
      "BPA time falls as hubs absorb residual mass sooner; K-dash is flat\n"
      "and far below both.\n");
}

}  // namespace
}  // namespace kdash

int main() {
  kdash::Run();
  return 0;
}
