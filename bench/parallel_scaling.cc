// Thread-scaling of the two parallelized paths: the precompute's explicit
// triangular inversion (the Figure 6 axis) and batch query serving through
// the persistent SearcherPool (the Figure 2 axis). Prints a human-readable
// table plus one machine-readable JSON line per axis so future changes have
// a perf trajectory to compare against.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/random.h"
#include "core/batch.h"
#include "core/kdash_index.h"
#include "graph/generators.h"
#include "lu/sparse_lu.h"
#include "lu/triangular.h"
#include "reorder/reorder.h"
#include "sparse/permute.h"

namespace kdash::bench {
namespace {

int Main() {
  const auto n = static_cast<NodeId>(8000 * BenchScale());
  PrintBenchHeader("Parallel scaling: precompute + batch serving",
                   "threads x {inverse-build seconds, batch QPS}; "
                   "hardware threads: " + std::to_string(DefaultNumThreads()));

  Rng rng(42);
  const auto graph =
      graph::PowerLawCluster(n, 6, 0.6, /*directed=*/true, 0.4, rng);

  // The inversion input: factors of the reordered RWR system matrix,
  // exactly as KDashIndex::Build produces them.
  const auto order = reorder::ComputeReordering(graph, reorder::Method::kHybrid);
  const auto a_perm =
      sparse::PermuteSymmetric(graph.NormalizedAdjacency(), order.new_of_old);
  const auto factors = lu::FactorizeLu(lu::BuildRwrSystemMatrix(a_perm, 0.95));

  const auto index = core::KDashIndex::Build(graph, {});
  const auto queries = SampleQueries(graph, 256);

  const std::vector<int> thread_counts{1, 2, 4, 8};
  PrintTableHeader({"threads", "invert_sec", "speedup", "batch_qps", "qps_x"});

  std::vector<JsonObject> records;
  double invert_base = 0.0;
  double qps_base = 0.0;
  for (const int threads : thread_counts) {
    const double invert_seconds = MedianSeconds(
        [&] {
          lu::InvertLowerTriangular(factors.lower, 0.0, threads);
          lu::InvertUpperTriangular(factors.upper, 0.0, threads);
        },
        3);

    core::SearcherPool pool(&index, threads);
    const double batch_seconds = MedianSeconds(
        [&] { pool.TopKBatch(queries, 10); }, 3);
    const double qps = static_cast<double>(queries.size()) / batch_seconds;

    if (threads == 1) {
      invert_base = invert_seconds;
      qps_base = qps;
    }
    PrintTableRow("t=" + std::to_string(threads),
                  {static_cast<double>(threads), invert_seconds,
                   invert_base / invert_seconds, qps, qps / qps_base});
    records.push_back(JsonObject()
                          .Add("threads", threads)
                          .Add("index_build_seconds", invert_seconds)
                          .Add("index_build_speedup", invert_base / invert_seconds)
                          .Add("batch_qps", qps)
                          .Add("batch_qps_speedup", qps / qps_base));
  }
  PrintJsonRecords("parallel_scaling", records);
  return 0;
}

}  // namespace
}  // namespace kdash::bench

int main() { return kdash::bench::Main(); }
