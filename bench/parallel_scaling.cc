// Thread-scaling of the parallelized paths: the precompute's three heavy
// stages — the phase-synchronous Louvain reordering, the pipelined
// level-scheduled LU factorization, and the explicit triangular inverses
// (the Figure 6 axis) — and batch query serving through the persistent
// SearcherPool (the Figure 2 axis). Prints a human-readable table plus one
// machine-readable JSON line so future changes have a perf trajectory to
// compare against; every record carries the full per-stage precompute
// breakdown (reorder / LU / L⁻¹ / U⁻¹) so the trajectory shows where any
// remaining sequential wall is.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/random.h"
#include "core/batch.h"
#include "core/kdash_index.h"
#include "graph/generators.h"
#include "lu/sparse_lu.h"
#include "lu/triangular.h"
#include "reorder/reorder.h"
#include "sparse/permute.h"

namespace kdash::bench {
namespace {

int Main() {
  const auto n = static_cast<NodeId>(8000 * BenchScale());
  PrintBenchHeader("Parallel scaling: precompute + batch serving",
                   "threads x {LU seconds, inverse seconds, batch QPS}; "
                   "hardware threads: " + std::to_string(DefaultNumThreads()));

  Rng rng(42);
  const auto graph =
      graph::PowerLawCluster(n, 6, 0.6, /*directed=*/true, 0.4, rng);

  const auto index = core::KDashIndex::Build(graph, {});
  const auto queries = SampleQueries(graph, 256);

  const std::vector<int> thread_counts{1, 2, 4, 8};
  PrintTableHeader({"threads", "reord_sec", "reord_x", "lu_sec", "lu_x",
                    "linv_sec", "uinv_sec", "inv_x", "batch_qps", "qps_x"});

  // Downstream stage inputs (exactly as KDashIndex::Build stages them),
  // produced by the t=1 timing loop's last rep below — the reordering is
  // deterministic at every thread count, so no separate staging run is
  // needed.
  reorder::Reordering order;
  sparse::CscMatrix w;
  lu::LuFactors factors;

  std::vector<JsonObject> records;
  double reorder_base = 0.0;
  double lu_base = 0.0;
  double invert_base = 0.0;
  double qps_base = 0.0;
  for (const int threads : thread_counts) {
    reorder::ReorderOptions reorder_options;
    reorder_options.num_threads = threads;
    const double reorder_seconds = MedianSeconds(
        [&] {
          order = reorder::ComputeReordering(graph, reorder::Method::kHybrid,
                                             reorder_options);
        },
        3);
    if (threads == thread_counts.front()) {
      const auto a_perm = sparse::PermuteSymmetric(graph.NormalizedAdjacency(),
                                                   order.new_of_old);
      w = lu::BuildRwrSystemMatrix(a_perm, 0.95);
      factors = lu::FactorizeLu(w);
    }
    const double lu_seconds = MedianSeconds(
        [&] { lu::FactorizeLu(w, lu::LuOptions{threads}); }, 3);
    const double lower_inverse_seconds = MedianSeconds(
        [&] { lu::InvertLowerTriangular(factors.lower, 0.0, threads); }, 3);
    const double upper_inverse_seconds = MedianSeconds(
        [&] { lu::InvertUpperTriangular(factors.upper, 0.0, threads); }, 3);
    // The legacy index_build_seconds key keeps its original methodology (one
    // combined L⁻¹ + U⁻¹ timing) so the cross-PR trajectory stays comparable.
    const double invert_seconds = MedianSeconds(
        [&] {
          lu::InvertLowerTriangular(factors.lower, 0.0, threads);
          lu::InvertUpperTriangular(factors.upper, 0.0, threads);
        },
        3);

    core::SearcherPool pool(&index, threads);
    const double batch_seconds = MedianSeconds(
        [&] { pool.TopKBatch(queries, 10); }, 3);
    const double qps = static_cast<double>(queries.size()) / batch_seconds;

    if (threads == 1) {
      reorder_base = reorder_seconds;
      lu_base = lu_seconds;
      invert_base = invert_seconds;
      qps_base = qps;
    }
    PrintTableRow("t=" + std::to_string(threads),
                  {static_cast<double>(threads), reorder_seconds,
                   reorder_base / reorder_seconds, lu_seconds,
                   lu_base / lu_seconds, lower_inverse_seconds,
                   upper_inverse_seconds, invert_base / invert_seconds, qps,
                   qps / qps_base});
    records.push_back(JsonObject()
                          .Add("threads", threads)
                          .Add("reorder_seconds", reorder_seconds)
                          .Add("reorder_speedup", reorder_base / reorder_seconds)
                          .Add("lu_seconds", lu_seconds)
                          .Add("lu_speedup", lu_base / lu_seconds)
                          .Add("lower_inverse_seconds", lower_inverse_seconds)
                          .Add("upper_inverse_seconds", upper_inverse_seconds)
                          .Add("index_build_seconds", invert_seconds)
                          .Add("index_build_speedup", invert_base / invert_seconds)
                          .Add("batch_qps", qps)
                          .Add("batch_qps_speedup", qps / qps_base));
  }
  PrintJsonRecords("parallel_scaling", records);
  return 0;
}

}  // namespace
}  // namespace kdash::bench

int main() { return kdash::bench::Main(); }
