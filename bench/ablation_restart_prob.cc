// Section 6.3.3 (text): the pruning stays effective across restart
// probabilities c. Sweeps c and reports per-query time and the fraction of
// nodes whose exact proximity had to be computed.
#include <cstdio>

#include "bench_util.h"
#include "core/kdash_index.h"
#include "core/kdash_searcher.h"

namespace kdash {
namespace {

void Run() {
  bench::PrintBenchHeader(
      "Ablation — restart probability sweep (Section 6.3.3)",
      "K-dash per-query time [s] and proximity computations vs c; "
      "Dictionary, K = 5");

  const auto dataset =
      datasets::MakeDataset(datasets::DatasetId::kDictionary, bench::BenchScale());
  const auto queries = bench::SampleQueries(dataset.graph, 10);

  bench::PrintTableHeader(
      {"c", "time/query", "prox/query", "visited", "tree-size"});
  for (const double c : {0.5, 0.7, 0.8, 0.9, 0.95, 0.99}) {
    core::KDashOptions options;
    options.restart_prob = c;
    const auto index = core::KDashIndex::Build(dataset.graph, options);
    core::KDashSearcher searcher(&index);

    double prox = 0.0, visited = 0.0, tree = 0.0;
    for (const NodeId q : queries) {
      core::SearchStats stats;
      searcher.TopK(q, 5, {}, &stats);
      prox += static_cast<double>(stats.proximity_computations);
      visited += static_cast<double>(stats.nodes_visited);
      tree += static_cast<double>(stats.tree_size);
    }
    const double count = static_cast<double>(queries.size());
    const double time = bench::MedianSeconds(
                            [&] {
                              for (const NodeId q : queries) {
                                searcher.TopK(q, 5);
                              }
                            },
                            3) /
                        count;
    bench::PrintTableRow(std::to_string(c),
                         {time, prox / count, visited / count, tree / count},
                         "%14.4g");
    std::fflush(stdout);
  }

  std::printf(
      "\nExpected shape (paper, Section 6.3.3): pruning keeps the search\n"
      "fast for every c examined; lower c spreads proximity mass, so more\n"
      "nodes must be examined before the threshold prunes the tail.\n");
}

}  // namespace
}  // namespace kdash

int main() {
  kdash::Run();
  return 0;
}
