// Automatic image captioning (the Pan et al. scenario from the paper's
// related work): a mixed media graph connects image nodes to their visual
// region nodes, regions to similar regions, and captioned images to their
// caption words. The caption candidates for an uncaptioned query image are
// the words with the highest RWR proximity — here computed exactly with a
// personalized (restart-set) K-dash query over the image AND its regions.
//
//   $ ./examples/image_captioning
#include <cstdio>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/engine.h"
#include "graph/graph.h"

int main() {
  using namespace kdash;

  // Synthetic mixed media graph. Layout of node ids:
  //   [0, kImages)                        image nodes
  //   [kImages, kImages + kRegions)       visual region nodes
  //   [kImages + kRegions, ... + kWords)  caption word nodes
  constexpr NodeId kImages = 120;
  constexpr NodeId kRegionsPerImage = 4;
  constexpr NodeId kRegions = kImages * kRegionsPerImage;
  const std::vector<std::string> words = {
      "sky",   "sea",    "sun",   "beach", "tree",  "forest",
      "cat",   "dog",    "grass", "snow",  "city",  "street",
      "car",   "people", "bird",  "flower"};
  const NodeId kWords = static_cast<NodeId>(words.size());
  const NodeId region_base = kImages;
  const NodeId word_base = static_cast<NodeId>(kImages + kRegions);

  // Ground truth: each image belongs to one of 4 scene types; scene types
  // use overlapping word vocabularies. The last 20 images are uncaptioned
  // (query set) — their word links are withheld.
  const std::vector<std::vector<int>> scene_words = {
      {0, 1, 2, 3},    // coastal: sky sea sun beach
      {4, 5, 8, 15},   // nature: tree forest grass flower
      {6, 7, 8, 14},   // animals: cat dog grass bird
      {10, 11, 12, 13} // urban: city street car people
  };
  constexpr NodeId kUncaptioned = 20;

  Rng rng(99);
  graph::GraphBuilder builder(static_cast<NodeId>(word_base + kWords));
  auto scene_of = [&](NodeId image) { return image % 4; };

  for (NodeId image = 0; image < kImages; ++image) {
    // Image ↔ its regions.
    for (NodeId r = 0; r < kRegionsPerImage; ++r) {
      const NodeId region =
          static_cast<NodeId>(region_base + image * kRegionsPerImage + r);
      builder.AddUndirectedEdge(image, region, 1.0);
    }
    // Captioned images ↔ their scene's words (with one noisy word).
    if (image >= kUncaptioned) {
      for (const int w : scene_words[static_cast<std::size_t>(scene_of(image))]) {
        builder.AddUndirectedEdge(image, static_cast<NodeId>(word_base + w),
                                  1.0);
      }
      builder.AddUndirectedEdge(
          image, static_cast<NodeId>(word_base + rng.NextBounded(kWords)),
          0.3);
    }
  }
  // Region ↔ visually similar regions of the same scene type (this is the
  // path that carries caption information to uncaptioned images).
  for (NodeId image = 0; image < kImages; ++image) {
    for (int link = 0; link < 3; ++link) {
      NodeId other = rng.NextNode(kImages);
      for (int tries = 0; tries < 20 && scene_of(other) != scene_of(image);
           ++tries) {
        other = rng.NextNode(kImages);
      }
      if (scene_of(other) != scene_of(image) || other == image) continue;
      const NodeId ra = static_cast<NodeId>(
          region_base + image * kRegionsPerImage + rng.NextBounded(kRegionsPerImage));
      const NodeId rb = static_cast<NodeId>(
          region_base + other * kRegionsPerImage + rng.NextBounded(kRegionsPerImage));
      builder.AddUndirectedEdge(ra, rb, 0.8);
    }
  }
  const graph::Graph graph = std::move(builder).Build();
  std::printf("Mixed media graph: %s\n", graph::DescribeGraph(graph).c_str());

  auto engine = Engine::Build(graph, {});
  if (!engine.ok()) {
    std::printf("engine build failed: %s\n",
                engine.status().ToString().c_str());
    return 1;
  }

  // Caption the uncaptioned images: restart into {image} ∪ its regions,
  // rank word nodes by proximity, take the top 4.
  int correct = 0, produced = 0;
  for (NodeId image = 0; image < kUncaptioned; ++image) {
    std::vector<NodeId> restart{image};
    for (NodeId r = 0; r < kRegionsPerImage; ++r) {
      restart.push_back(
          static_cast<NodeId>(region_base + image * kRegionsPerImage + r));
    }
    const auto result = engine->Search(Query::Personalized(restart, 400));
    if (!result.ok()) {
      std::printf("search failed: %s\n", result.status().ToString().c_str());
      return 1;
    }

    std::vector<int> predicted;
    for (const auto& entry : result->top) {
      if (entry.node < word_base) continue;
      predicted.push_back(entry.node - word_base);
      if (predicted.size() == 4) break;
    }

    const auto& truth = scene_words[static_cast<std::size_t>(scene_of(image))];
    if (image < 5) {
      std::printf("image %-3d (scene %d) captions:", image, scene_of(image));
      for (const int w : predicted) {
        std::printf(" %s", words[static_cast<std::size_t>(w)].c_str());
      }
      std::printf("\n");
    }
    for (const int w : predicted) {
      ++produced;
      for (const int t : truth) {
        if (w == t) {
          ++correct;
          break;
        }
      }
    }
  }

  std::printf("\nCaptioning accuracy over %d uncaptioned images: %.1f%% "
              "(%d/%d words)\n",
              kUncaptioned, 100.0 * correct / produced, correct, produced);
  std::printf(
      "RWR propagates caption words across visually similar regions — the\n"
      "paper's automatic-captioning motivation — and K-dash makes the\n"
      "ranking exact.\n");
  return correct * 2 > produced ? 0 : 1;  // expect well above 50%
}
