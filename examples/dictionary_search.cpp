// Dictionary term search (the paper's Table 2 case study as an
// application): given a computing term, return the most related vocabulary
// by exact RWR proximity over a FOLDOC-like "described-by" graph.
//
//   $ ./examples/dictionary_search              # runs the 5 paper queries
//   $ ./examples/dictionary_search Linux Unix   # query specific terms
#include <cstdio>
#include <string>
#include <vector>

#include "core/engine.h"
#include "datasets/foldoc_case_study.h"

int main(int argc, char** argv) {
  using namespace kdash;

  const datasets::TermGraph term_graph = datasets::MakeFoldocCaseStudy();
  std::printf("Dictionary graph: %s\n",
              graph::DescribeGraph(term_graph.graph).c_str());

  auto engine = Engine::Build(term_graph.graph, {});
  if (!engine.ok()) {
    std::printf("engine build failed: %s\n",
                engine.status().ToString().c_str());
    return 1;
  }

  std::vector<std::string> queries;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) queries.emplace_back(argv[i]);
  } else {
    queries = datasets::CaseStudyQueries();
  }

  for (const std::string& query : queries) {
    const NodeId q = term_graph.IdOf(query);
    if (q == kInvalidNode) {
      std::printf("\n'%s' is not in the dictionary.\n", query.c_str());
      continue;
    }
    const auto result = engine->Search(Query::Single(q, 6));
    if (!result.ok()) {
      std::printf("search failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    const auto& top = result->top;
    std::printf("\nTerms most related to '%s':\n", query.c_str());
    for (std::size_t i = 1; i < top.size(); ++i) {  // skip the term itself
      std::printf("  %zu. %-40s (proximity %.5f)\n", i,
                  term_graph.names[static_cast<std::size_t>(top[i].node)].c_str(),
                  top[i].score);
    }
    std::printf("  [examined %d of %d reachable terms before pruning]\n",
                result->stats.proximity_computations, result->stats.tree_size);
  }
  return 0;
}
