// Link-prediction example (the Liben-Nowell & Kleinberg scenario from the
// paper's related work): hide a fraction of a co-authorship network's
// edges, rank candidate collaborators by RWR proximity, and measure how
// many hidden collaborations the top-k predictions recover versus random
// guessing.
//
//   $ ./examples/link_prediction
#include <cstdio>
#include <set>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/engine.h"
#include "graph/generators.h"

int main() {
  using namespace kdash;

  // A collaboration network with community structure (like cond-mat).
  Rng rng(7);
  const NodeId n = 800;
  const graph::Graph full =
      graph::PlantedPartition(n, 10, 8.0, 0.5, /*weighted=*/true, rng);

  // Hide 15% of the undirected edges (only u < v representatives).
  std::vector<std::pair<NodeId, NodeId>> hidden;
  graph::GraphBuilder observed_builder(n);
  for (NodeId u = 0; u < n; ++u) {
    for (const graph::Neighbor& nb : full.OutNeighbors(u)) {
      if (u >= nb.node) continue;
      if (rng.NextDouble() < 0.15) {
        hidden.emplace_back(u, nb.node);
      } else {
        observed_builder.AddUndirectedEdge(u, nb.node, nb.weight);
      }
    }
  }
  const graph::Graph observed = std::move(observed_builder).Build();
  std::printf("Observed graph: %s\n", graph::DescribeGraph(observed).c_str());
  std::printf("Hidden future collaborations: %zu\n", hidden.size());

  auto engine = Engine::Build(observed, {});
  if (!engine.ok()) {
    std::printf("engine build failed: %s\n",
                engine.status().ToString().c_str());
    return 1;
  }

  // For each author with a hidden collaboration, predict the top-10
  // non-neighbors by proximity; count hits.
  std::set<NodeId> authors;
  std::set<std::pair<NodeId, NodeId>> hidden_set;
  for (const auto& [u, v] : hidden) {
    authors.insert(u);
    hidden_set.insert({u, v});
    hidden_set.insert({v, u});
  }

  int rwr_hits = 0, random_hits = 0, predictions = 0;
  constexpr int kPerAuthor = 10;
  for (const NodeId author : authors) {
    std::set<NodeId> known{author};
    for (const graph::Neighbor& nb : observed.OutNeighbors(author)) {
      known.insert(nb.node);
    }

    const auto result = engine->Search(Query::Single(author, 64));
    if (!result.ok()) {
      std::printf("search failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    int made = 0;
    for (const auto& entry : result->top) {
      if (known.count(entry.node)) continue;
      ++predictions;
      if (hidden_set.count({author, entry.node})) ++rwr_hits;
      if (++made == kPerAuthor) break;
    }
    // Random baseline: same number of guesses among non-neighbors.
    for (int g = 0; g < made; ++g) {
      const NodeId guess = rng.NextNode(n);
      if (!known.count(guess) && hidden_set.count({author, guess})) {
        ++random_hits;
      }
    }
  }

  std::printf("\nPredictions per author: %d\n", kPerAuthor);
  std::printf("RWR top-k hit rate    : %.4f (%d / %d)\n",
              static_cast<double>(rwr_hits) / predictions, rwr_hits,
              predictions);
  std::printf("Random guess hit rate : %.4f (%d / %d)\n",
              static_cast<double>(random_hits) / predictions, random_hits,
              predictions);
  std::printf(
      "\nRWR captures the global graph structure (common collaborators,\n"
      "community membership), so it should beat random prediction by a\n"
      "wide margin — the paper's link-prediction motivation.\n");
  return rwr_hits > random_hits ? 0 : 1;
}
