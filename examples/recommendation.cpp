// Recommender-system example (the Konstas et al. scenario from the paper's
// related work): RWR proximities over a user–item bipartite graph rank
// items for a user; high-proximity unrated items are the recommendations.
//
//   $ ./examples/recommendation
#include <cstdio>
#include <set>
#include <vector>

#include "common/random.h"
#include "core/kdash_index.h"
#include "core/kdash_searcher.h"
#include "graph/generators.h"

int main() {
  using namespace kdash;

  constexpr NodeId kUsers = 400;
  constexpr NodeId kItems = 800;
  constexpr Index kRatings = 6000;

  Rng rng(2026);
  const graph::Graph graph =
      graph::BipartiteRatings(kUsers, kItems, kRatings, rng);
  std::printf("User-item graph: %s\n", graph::DescribeGraph(graph).c_str());

  const core::KDashIndex index = core::KDashIndex::Build(graph, {});
  core::KDashSearcher searcher(&index);

  // Recommend for a handful of users: rank everything by RWR proximity but
  // exclude the user, all other users, and already-rated items — the top-k
  // that remains are unseen items reached through taste-alike users.
  for (const NodeId user : {0, 7, 42}) {
    std::set<NodeId> rated;
    for (const graph::Neighbor& nb : graph.OutNeighbors(user)) {
      rated.insert(nb.node);
    }

    // Exclude the user's own node, all other users, and the rated items
    // from the ranking itself — the exact top-k *of the allowed items*.
    std::vector<NodeId> exclude(rated.begin(), rated.end());
    for (NodeId other = 0; other < kUsers; ++other) exclude.push_back(other);
    core::SearchOptions options;
    options.exclude = &exclude;
    const auto ranked = searcher.TopK(user, 5, options);
    std::printf("\nUser %d (%zu ratings) — top recommendations:\n", user,
                rated.size());
    for (const auto& entry : ranked) {
      std::printf("  item %-5d proximity %.6f\n", entry.node - kUsers,
                  entry.score);
    }
    if (ranked.empty()) {
      std::printf("  (no unrated items reachable — user is isolated)\n");
    }
  }

  std::printf(
      "\nRecommendations are exact RWR rankings (Theorem 2), so item order\n"
      "is reproducible and auditable — no approximation rank to tune.\n");
  return 0;
}
