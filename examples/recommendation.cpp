// Recommender-system example (the Konstas et al. scenario from the paper's
// related work): RWR proximities over a user–item bipartite graph rank
// items for a user; high-proximity unrated items are the recommendations.
//
//   $ ./examples/recommendation
#include <cstdio>
#include <set>
#include <vector>

#include "common/random.h"
#include "core/engine.h"
#include "graph/generators.h"

int main() {
  using namespace kdash;

  constexpr NodeId kUsers = 400;
  constexpr NodeId kItems = 800;
  constexpr Index kRatings = 6000;

  Rng rng(2026);
  const graph::Graph graph =
      graph::BipartiteRatings(kUsers, kItems, kRatings, rng);
  std::printf("User-item graph: %s\n", graph::DescribeGraph(graph).c_str());

  auto engine = Engine::Build(graph, {});
  if (!engine.ok()) {
    std::printf("engine build failed: %s\n",
                engine.status().ToString().c_str());
    return 1;
  }

  // Recommend for a handful of users: rank everything by RWR proximity but
  // exclude the user, all other users, and already-rated items — the top-k
  // that remains are unseen items reached through taste-alike users. The
  // exclusion set lives on the Query itself: nothing to keep alive.
  for (const NodeId user : {0, 7, 42}) {
    std::set<NodeId> rated;
    for (const graph::Neighbor& nb : graph.OutNeighbors(user)) {
      rated.insert(nb.node);
    }

    Query query = Query::Single(user, 5);
    query.exclude.assign(rated.begin(), rated.end());
    for (NodeId other = 0; other < kUsers; ++other) {
      query.exclude.push_back(other);
    }
    const auto result = engine->Search(query);
    if (!result.ok()) {
      std::printf("search failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("\nUser %d (%zu ratings) — top recommendations:\n", user,
                rated.size());
    for (const auto& entry : result->top) {
      std::printf("  item %-5d proximity %.6f\n", entry.node - kUsers,
                  entry.score);
    }
    if (result->top.empty()) {
      std::printf("  (no unrated items reachable — user is isolated)\n");
    }
  }

  std::printf(
      "\nRecommendations are exact RWR rankings (Theorem 2), so item order\n"
      "is reproducible and auditable — no approximation rank to tune.\n");
  return 0;
}
