// Quickstart: build a graph, build the K-dash index once, run exact top-k
// RWR queries, and cross-check against the classic iterative solver.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/kdash_index.h"
#include "core/kdash_searcher.h"
#include "graph/graph.h"
#include "rwr/power_iteration.h"

int main() {
  using namespace kdash;

  // 1. Build a graph (directed, weighted). Ids are dense [0, n).
  //    A tiny collaboration network: 0 and 1 work together a lot, 2 bridges
  //    to the {3, 4, 5} cluster.
  graph::GraphBuilder builder(6);
  builder.AddUndirectedEdge(0, 1, 5.0);
  builder.AddUndirectedEdge(0, 2, 1.0);
  builder.AddUndirectedEdge(1, 2, 1.0);
  builder.AddUndirectedEdge(2, 3, 1.0);
  builder.AddUndirectedEdge(3, 4, 4.0);
  builder.AddUndirectedEdge(3, 5, 4.0);
  builder.AddUndirectedEdge(4, 5, 4.0);
  const graph::Graph graph = std::move(builder).Build();

  // 2. Precompute the index (reorder → LU → sparse inverses). Defaults:
  //    c = 0.95 and hybrid reordering, as in the paper's experiments.
  core::KDashOptions options;
  options.restart_prob = 0.95;
  const core::KDashIndex index = core::KDashIndex::Build(graph, options);

  // 3. Query: exact top-3 nodes by RWR proximity w.r.t. node 0.
  core::KDashSearcher searcher(&index);
  core::SearchStats stats;
  const auto top = searcher.TopK(/*query=*/0, /*k=*/3, {}, &stats);

  std::printf("Top-3 RWR proximities from node 0 (c = %.2f):\n",
              index.restart_prob());
  for (std::size_t i = 0; i < top.size(); ++i) {
    std::printf("  #%zu  node %d  proximity %.6f\n", i + 1, top[i].node,
                top[i].score);
  }
  std::printf("(visited %d nodes, computed %d exact proximities, pruned=%s)\n",
              stats.nodes_visited, stats.proximity_computations,
              stats.terminated_early ? "yes" : "no");

  // 4. Verify against the iterative ground truth (Eq. 1 of the paper).
  const auto truth =
      rwr::TopKByPowerIteration(graph.NormalizedAdjacency(), 0, 3, {});
  bool exact = truth.size() == top.size();
  for (std::size_t i = 0; exact && i < top.size(); ++i) {
    exact = top[i].node == truth[i].node;
  }
  std::printf("Matches iterative ground truth: %s\n", exact ? "yes" : "NO");
  return exact ? 0 : 1;
}
