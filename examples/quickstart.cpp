// Quickstart: build a graph, stand up a kdash::Engine, run exact top-k
// RWR queries, and cross-check against the classic iterative solver.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/engine.h"
#include "graph/graph.h"
#include "rwr/power_iteration.h"

int main() {
  using namespace kdash;

  // 1. Build a graph (directed, weighted). Ids are dense [0, n).
  //    A tiny collaboration network: 0 and 1 work together a lot, 2 bridges
  //    to the {3, 4, 5} cluster.
  graph::GraphBuilder builder(6);
  builder.AddUndirectedEdge(0, 1, 5.0);
  builder.AddUndirectedEdge(0, 2, 1.0);
  builder.AddUndirectedEdge(1, 2, 1.0);
  builder.AddUndirectedEdge(2, 3, 1.0);
  builder.AddUndirectedEdge(3, 4, 4.0);
  builder.AddUndirectedEdge(3, 5, 4.0);
  builder.AddUndirectedEdge(4, 5, 4.0);
  const graph::Graph graph = std::move(builder).Build();

  // 2. Build the engine (reorder → LU → sparse inverses happen inside).
  //    Defaults: c = 0.95 and hybrid reordering, as in the paper's
  //    experiments. Errors come back as a Status — nothing aborts.
  EngineOptions options;
  options.index.restart_prob = 0.95;
  auto engine = Engine::Build(graph, options);
  if (!engine.ok()) {
    std::printf("engine build failed: %s\n",
                engine.status().ToString().c_str());
    return 1;
  }

  // 3. Query: exact top-3 nodes by RWR proximity w.r.t. node 0.
  const auto result = engine->Search(Query::Single(/*source=*/0, /*k=*/3));
  if (!result.ok()) {
    std::printf("search failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("Top-3 RWR proximities from node 0 (c = %.2f):\n",
              engine->restart_prob());
  for (std::size_t i = 0; i < result->top.size(); ++i) {
    std::printf("  #%zu  node %d  proximity %.6f\n", i + 1,
                result->top[i].node, result->top[i].score);
  }
  std::printf("(visited %d nodes, computed %d exact proximities, pruned=%s)\n",
              result->stats.nodes_visited,
              result->stats.proximity_computations,
              result->stats.terminated_early ? "yes" : "no");

  // 4. Verify against the iterative ground truth (Eq. 1 of the paper).
  const auto truth =
      rwr::TopKByPowerIteration(graph.NormalizedAdjacency(), 0, 3, {});
  bool exact = truth.size() == result->top.size();
  for (std::size_t i = 0; exact && i < result->top.size(); ++i) {
    exact = result->top[i].node == truth[i].node;
  }
  std::printf("Matches iterative ground truth: %s\n", exact ? "yes" : "NO");
  return exact ? 0 : 1;
}
